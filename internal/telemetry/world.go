package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Live world dashboard. During a distributed run, every rank's collector
// dump (optionally with its wire dump appended) rides a heartbeat gather
// to rank 0 every few steps; rank 0 feeds the payloads into a
// WorldTracker, which keeps per-rank liveness and rate state and renders
// it two ways: Prometheus text exposition on /metrics (scrapeable
// mid-run) and a /status JSON with last-heard staleness, rolling step
// rate and straggler flags — the world-level rank-health view the
// wire-hardening roadmap item needs before failure detection can land.
// The tracker is observation-only: it never touches collectors and costs
// the hot path nothing.

// stragglerFactor flags a rank whose rolling step time exceeds the
// cross-rank mean by this factor.
const stragglerFactor = 1.2

// worldRank is one rank's tracked state.
type worldRank struct {
	seen            bool
	lastHeardUnixNs int64
	steps           int64
	stepNs          int64
	rollingStepNs   float64 // mean step ns over the last observation delta
	dump            []int64 // latest collector dump
	wire            []int64 // latest wire dump, nil when the run has no wire
}

// WorldTracker accumulates heartbeat observations of a fixed-size world.
// All methods are safe for concurrent use (HTTP handlers read while the
// run loop observes).
type WorldTracker struct {
	mu    sync.Mutex
	ranks []worldRank
}

// NewWorldTracker returns a tracker for a world of the given size.
func NewWorldTracker(world int) *WorldTracker {
	if world < 1 {
		world = 1
	}
	return &WorldTracker{ranks: make([]worldRank, world)}
}

func (t *WorldTracker) lock()   { t.mu.Lock() }
func (t *WorldTracker) unlock() { t.mu.Unlock() }

// World returns the tracked world size.
func (t *WorldTracker) World() int { return len(t.ranks) }

// ObserveDump records one rank's heartbeat payload — a collector dump,
// or a collector dump with the rank's wire dump appended (the split is
// by length; heartbeats are uniform in shape within a run) — heard at
// the given wall-clock time.
func (t *WorldTracker) ObserveDump(rank int, payload []int64, heardUnixNs int64) error {
	if rank < 0 || rank >= len(t.ranks) {
		return fmt.Errorf("telemetry: heartbeat from rank %d of world %d", rank, len(t.ranks))
	}
	base := DumpLen()
	var dump, wire []int64
	switch len(payload) {
	case base:
		dump = payload
	case base + WireDumpLen(len(t.ranks)):
		dump, wire = payload[:base], payload[base:]
	default:
		return fmt.Errorf("telemetry: heartbeat payload of %d values, want %d or %d",
			len(payload), base, base+WireDumpLen(len(t.ranks)))
	}
	v, _ := ViewDump(dump)
	steps, stepNs := v.Steps(), v.StepNs()
	t.lock()
	defer t.unlock()
	r := &t.ranks[rank]
	if d := steps - r.steps; r.seen && d > 0 {
		r.rollingStepNs = float64(stepNs-r.stepNs) / float64(d)
	}
	r.seen = true
	r.lastHeardUnixNs = heardUnixNs
	r.steps = steps
	r.stepNs = stepNs
	r.dump = append(r.dump[:0], dump...)
	if wire != nil {
		r.wire = append(r.wire[:0], wire...)
	}
	return nil
}

// RankStatus is one rank's row in the world status.
type RankStatus struct {
	Rank int `json:"rank"`
	// Heard is false until the first heartbeat from this rank arrives; the
	// remaining fields are zero until then.
	Heard bool `json:"heard"`
	// LastHeardSeconds is the staleness of the newest heartbeat.
	LastHeardSeconds float64 `json:"last_heard_seconds"`
	Steps            int64   `json:"steps"`
	StepSecondsTotal float64 `json:"step_seconds_total"`
	// RollingStepSeconds is the mean step time between the two newest
	// heartbeats (zero until two observations with step progress exist).
	RollingStepSeconds float64 `json:"rolling_step_seconds"`
	// Straggler marks a rank whose rolling step time exceeds the
	// cross-rank mean by more than the straggler factor.
	Straggler bool `json:"straggler"`
}

// WorldStatus is the /status document.
type WorldStatus struct {
	World int          `json:"world"`
	Ranks []RankStatus `json:"ranks"`
	// StragglerFactor restates the flagging threshold for dashboards.
	StragglerFactor float64 `json:"straggler_factor"`
}

// Status assembles the world's health view at the given wall-clock time.
func (t *WorldTracker) Status(nowUnixNs int64) WorldStatus {
	t.lock()
	defer t.unlock()
	st := WorldStatus{World: len(t.ranks), Ranks: make([]RankStatus, len(t.ranks)), StragglerFactor: stragglerFactor}
	mean, n := 0.0, 0
	for i := range t.ranks {
		if r := &t.ranks[i]; r.seen && r.rollingStepNs > 0 {
			mean += r.rollingStepNs
			n++
		}
	}
	if n > 0 {
		mean /= float64(n)
	}
	for i := range t.ranks {
		r := &t.ranks[i]
		rs := RankStatus{Rank: i, Heard: r.seen}
		if r.seen {
			rs.LastHeardSeconds = float64(nowUnixNs-r.lastHeardUnixNs) / 1e9
			rs.Steps = r.steps
			rs.StepSecondsTotal = float64(r.stepNs) / 1e9
			rs.RollingStepSeconds = r.rollingStepNs / 1e9
			rs.Straggler = n > 1 && r.rollingStepNs > stragglerFactor*mean
		}
		st.Ranks[i] = rs
	}
	return st
}

// WriteMetrics renders the world state in Prometheus text exposition
// format at the given wall-clock time.
func (t *WorldTracker) WriteMetrics(w io.Writer, nowUnixNs int64) {
	st := t.Status(nowUnixNs)
	fmt.Fprintf(w, "# HELP channeldns_world_size Number of ranks in the running world.\n")
	fmt.Fprintf(w, "# TYPE channeldns_world_size gauge\n")
	fmt.Fprintf(w, "channeldns_world_size %d\n", st.World)
	fmt.Fprintf(w, "# HELP channeldns_rank_last_heard_seconds Staleness of each rank's newest heartbeat.\n")
	fmt.Fprintf(w, "# TYPE channeldns_rank_last_heard_seconds gauge\n")
	for _, r := range st.Ranks {
		if !r.Heard {
			continue
		}
		fmt.Fprintf(w, "channeldns_rank_last_heard_seconds{rank=\"%d\"} %g\n", r.Rank, r.LastHeardSeconds)
	}
	fmt.Fprintf(w, "# HELP channeldns_rank_steps_total Completed timesteps per rank.\n")
	fmt.Fprintf(w, "# TYPE channeldns_rank_steps_total counter\n")
	for _, r := range st.Ranks {
		if !r.Heard {
			continue
		}
		fmt.Fprintf(w, "channeldns_rank_steps_total{rank=\"%d\"} %d\n", r.Rank, r.Steps)
	}
	fmt.Fprintf(w, "# HELP channeldns_rank_step_seconds_total Accumulated step wall clock per rank.\n")
	fmt.Fprintf(w, "# TYPE channeldns_rank_step_seconds_total counter\n")
	for _, r := range st.Ranks {
		if !r.Heard {
			continue
		}
		fmt.Fprintf(w, "channeldns_rank_step_seconds_total{rank=\"%d\"} %g\n", r.Rank, r.StepSecondsTotal)
	}
	fmt.Fprintf(w, "# HELP channeldns_rank_step_seconds_rolling Mean step time between the two newest heartbeats.\n")
	fmt.Fprintf(w, "# TYPE channeldns_rank_step_seconds_rolling gauge\n")
	for _, r := range st.Ranks {
		if !r.Heard {
			continue
		}
		fmt.Fprintf(w, "channeldns_rank_step_seconds_rolling{rank=\"%d\"} %g\n", r.Rank, r.RollingStepSeconds)
	}
	fmt.Fprintf(w, "# HELP channeldns_rank_straggler 1 when the rank's rolling step time exceeds the cross-rank mean by the straggler factor.\n")
	fmt.Fprintf(w, "# TYPE channeldns_rank_straggler gauge\n")
	for _, r := range st.Ranks {
		if !r.Heard {
			continue
		}
		v := 0
		if r.Straggler {
			v = 1
		}
		fmt.Fprintf(w, "channeldns_rank_straggler{rank=\"%d\"} %d\n", r.Rank, v)
	}

	// Per-phase and per-channel counters straight out of the latest dumps.
	t.lock()
	phases := make([][]int64, len(t.ranks)) // [rank][phase] ns
	comms := make([][][3]int64, len(t.ranks))
	wires := make([][]int64, len(t.ranks))
	for i := range t.ranks {
		r := &t.ranks[i]
		if !r.seen {
			continue
		}
		if v, ok := ViewDump(r.dump); ok {
			pns := make([]int64, NumPhases)
			for p := Phase(0); p < NumPhases; p++ {
				pns[p] = v.PhaseNs(p)
			}
			phases[i] = pns
			cts := make([][3]int64, NumCommOps)
			for op := CommOp(0); op < NumCommOps; op++ {
				calls, msgs, bytes := v.CommCounts(op)
				cts[op] = [3]int64{calls, msgs, bytes}
			}
			comms[i] = cts
		}
		if r.wire != nil {
			wires[i] = append([]int64(nil), r.wire...)
		}
	}
	t.unlock()

	fmt.Fprintf(w, "# HELP channeldns_rank_phase_seconds_total Accumulated wall clock per phase per rank.\n")
	fmt.Fprintf(w, "# TYPE channeldns_rank_phase_seconds_total counter\n")
	for rank, pns := range phases {
		for p := Phase(0); p < NumPhases; p++ {
			if pns == nil || pns[p] == 0 {
				continue
			}
			fmt.Fprintf(w, "channeldns_rank_phase_seconds_total{rank=\"%d\",phase=\"%s\"} %g\n",
				rank, p, float64(pns[p])/1e9)
		}
	}
	fmt.Fprintf(w, "# HELP channeldns_rank_comm_bytes_total Payload bytes per communication channel per rank.\n")
	fmt.Fprintf(w, "# TYPE channeldns_rank_comm_bytes_total counter\n")
	for rank, cts := range comms {
		for op := CommOp(0); op < NumCommOps; op++ {
			if cts == nil || cts[op][2] == 0 {
				continue
			}
			fmt.Fprintf(w, "channeldns_rank_comm_bytes_total{rank=\"%d\",op=\"%s\"} %d\n", rank, op, cts[op][2])
		}
	}

	anyWire := false
	for _, wd := range wires {
		if wd != nil {
			anyWire = true
		}
	}
	if anyWire {
		world := len(t.ranks)
		sum := func(wd []int64, field int) int64 {
			var s int64
			for p := 0; p < world; p++ {
				s += wd[1+p*WirePeerDumpLen+field]
			}
			return s
		}
		emit := func(name, help string, field int) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for rank, wd := range wires {
				if wd == nil {
					continue
				}
				fmt.Fprintf(w, "%s{rank=\"%d\"} %d\n", name, rank, sum(wd, field))
			}
		}
		emit("channeldns_rank_wire_frames_out_total", "Wire frames enqueued toward peers.", WireFramesOut)
		emit("channeldns_rank_wire_bytes_out_total", "Wire bytes (frames incl. headers) enqueued toward peers.", WireBytesOut)
		emit("channeldns_rank_wire_frames_in_total", "Wire frames decoded from peers.", WireFramesIn)
		emit("channeldns_rank_wire_bytes_in_total", "Wire bytes decoded from peers.", WireBytesIn)
	}
}

// observedRanks returns the ranks heard from so far, ascending (tests).
func (t *WorldTracker) observedRanks() []int {
	t.lock()
	defer t.unlock()
	var out []int
	for i := range t.ranks {
		if t.ranks[i].seen {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// MetricsHandler serves the tracker in Prometheus text format.
func MetricsHandler(t *WorldTracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.WriteMetrics(w, time.Now().UnixNano())
	})
}

// StatusHandler serves the /status JSON health view.
func StatusHandler(t *WorldTracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := t.Status(time.Now().UnixNano())
		b, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		b = append(b, '\n')
		w.Write(b)
	})
}
