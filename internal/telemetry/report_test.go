package telemetry

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// feedRegistry drives a fixed workload into a registry from `workers`
// goroutines per rank, with a permutation knob that changes the
// interleaving but not the multiset of samples.
func feedRegistry(reg *Registry, ranks, workers int, perm int) {
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		c := reg.Rank(r)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(r, w int) {
				defer wg.Done()
				// Permute the order of operations per goroutine.
				n := 20
				for i := 0; i < n; i++ {
					j := (i*perm + w) % n
					c.AddComm(CommYtoZ, int64(100+j), 2)
					c.AddFlops(int64(10 * j))
					c.phases[PhaseTransposeAB].ns.Add(int64(j+1) * 1000)
					c.phases[PhaseTransposeAB].calls.Add(1)
					c.phases[PhaseTransposeAB].hist.Record(int64(j+1) * 1000)
				}
			}(r, w)
		}
	}
	wg.Wait()
	for r := 0; r < ranks; r++ {
		reg.Rank(r).StepDone(7 * time.Millisecond)
	}
}

// fixReportMeta pins the ambient build metadata so two in-process reports
// are byte-comparable.
func fixReportMeta(r *Report) {
	r.GitRev = "deadbeef"
}

// TestReportDeterministic: the same run (same multiset of samples per
// rank) must produce byte-identical report JSON regardless of how worker
// goroutines interleaved their recording — the aggregation is pure
// reduction, the encoder field order is fixed, and map keys are sorted.
func TestReportDeterministic(t *testing.T) {
	encode := func(perm int) []byte {
		reg := NewRegistry()
		feedRegistry(reg, 4, 3, perm)
		rep := NewReport("determinism", reg, map[string]string{"nx": "16", "a": "1"})
		fixReportMeta(rep)
		var buf bytes.Buffer
		if err := rep.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := encode(1)
	for _, perm := range []int{3, 7, 13} {
		b := encode(perm)
		if !bytes.Equal(a, b) {
			t.Fatalf("report bytes differ between interleavings:\n%s\n---\n%s", a, b)
		}
	}
}

// TestReportValidateRoundTrip: a built report must validate, survive the
// JSON round trip, and re-validate.
func TestReportValidateRoundTrip(t *testing.T) {
	reg := NewRegistry()
	feedRegistry(reg, 2, 2, 1)
	rep := NewReport("table9", reg, nil)
	if err := rep.Validate(); err != nil {
		t.Fatalf("fresh report invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ValidateJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if back.Table != "table9" || back.Ranks != 2 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

// TestReportValidateRejects: the validator must catch the corruption
// modes bench-smoke exists to catch.
func TestReportValidateRejects(t *testing.T) {
	fresh := func() *Report {
		reg := NewRegistry()
		feedRegistry(reg, 1, 1, 1)
		return NewReport("t", reg, nil)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "v0" }},
		{"empty table", func(r *Report) { r.Table = "" }},
		{"unknown phase", func(r *Report) { r.Phases[0].Phase = "warp_drive" }},
		{"zero-call phase", func(r *Report) { r.Phases[0].Calls = 0 }},
		{"min above max", func(r *Report) {
			r.Phases[0].MinRankSeconds = r.Phases[0].MaxRankSeconds + 1
		}},
		{"negative bytes", func(r *Report) { r.Comm[0].Bytes = -1 }},
		{"nil config", func(r *Report) { r.Config = nil }},
	}
	for _, tc := range cases {
		r := fresh()
		tc.mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	if _, err := ValidateJSON([]byte(`{"schema":"channeldns/bench/v1","unknown_field":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ValidateJSON([]byte(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestSnapshotImbalance: a deliberately skewed pair of ranks must show
// max/mean imbalance > 1 and correct min/max attribution.
func TestSnapshotImbalance(t *testing.T) {
	reg := NewRegistry()
	fast, slow := reg.Rank(0), reg.Rank(1)
	fast.phases[PhaseViscousSolve].ns.Store(int64(time.Millisecond))
	fast.phases[PhaseViscousSolve].calls.Store(1)
	fast.phases[PhaseViscousSolve].hist.Record(int64(time.Millisecond))
	slow.phases[PhaseViscousSolve].ns.Store(int64(3 * time.Millisecond))
	slow.phases[PhaseViscousSolve].calls.Store(1)
	slow.phases[PhaseViscousSolve].hist.Record(int64(3 * time.Millisecond))

	snap := reg.Snapshot()
	if len(snap.Phases) != 1 {
		t.Fatalf("phases = %d, want 1 (unsampled phases dropped)", len(snap.Phases))
	}
	p := snap.Phases[0]
	if p.Phase != PhaseViscousSolve.String() {
		t.Fatalf("phase = %q", p.Phase)
	}
	mean := (0.001 + 0.003) / 2
	if p.MinRankSeconds != 0.001 || p.MaxRankSeconds != 0.003 {
		t.Errorf("min/max = %g/%g", p.MinRankSeconds, p.MaxRankSeconds)
	}
	if diff := p.Imbalance - 0.003/mean; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("imbalance = %g, want %g", p.Imbalance, 0.003/mean)
	}
}

// TestRegistryRankReuse: the same rank handle must come back on repeat
// calls, and the snapshot must skip never-registered gaps.
func TestRegistryRankReuse(t *testing.T) {
	reg := NewRegistry()
	a := reg.Rank(5)
	if reg.Rank(5) != a {
		t.Fatal("Rank(5) returned a different collector")
	}
	sp := a.Begin(PhaseCollective)
	sp.End()
	snap := reg.Snapshot()
	if snap.Ranks != 1 {
		t.Errorf("snapshot ranks = %d, want 1 (gaps skipped)", snap.Ranks)
	}
}
