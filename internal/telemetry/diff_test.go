package telemetry

import (
	"strings"
	"testing"
)

// fixtureReport builds a small valid report with one phase, one comm
// channel and one metric, scaled by the given factor on every timing.
func fixtureReport(scale float64) *Report {
	return &Report{
		Schema:    SchemaVersion,
		Table:     "table9",
		GitRev:    "unknown",
		GoVersion: "go",
		Config:    map[string]string{"nx": "32", "steps": "3"},
		Ranks:     1,
		// Comfortably above the 100us noise floor so ratios are judged.
		WallSeconds:     0.030 * scale,
		PhaseSecondsSum: 0.029 * scale,
		Steps:           3,
		Phases: []PhaseStats{{
			Phase: "transpose", Calls: 36,
			TotalSeconds:   0.010 * scale,
			MinRankSeconds: 0.010 * scale, MeanRankSeconds: 0.010 * scale, MaxRankSeconds: 0.010 * scale,
			Imbalance: 1, P50Seconds: 0.001 * scale, P99Seconds: 0.002 * scale,
		}},
		Comm:            []CommStats{{Op: "YtoZ", Calls: 12, Messages: 12, Bytes: 1 << 20}},
		Flops:           1e9,
		GFlopsSustained: 1.0 / scale,
		AllocsPerStep:   21,
		Metrics:         map[string]float64{"speedup": 1},
	}
}

func TestDiffIdenticalPasses(t *testing.T) {
	base := fixtureReport(1)
	res := Diff(base, fixtureReport(1), DiffOptions{})
	if res.Verdict != Pass {
		var sb strings.Builder
		res.Write(&sb)
		t.Fatalf("identical reports: verdict %v\n%s", res.Verdict, sb.String())
	}
	if !res.ConfigMatch {
		t.Error("identical configs reported as mismatched")
	}
}

// TestDiffDetectsInjectedRegression: the ISSUE's acceptance fixture — a
// 2x slowdown must produce a fail verdict at default thresholds.
func TestDiffDetectsInjectedRegression(t *testing.T) {
	res := Diff(fixtureReport(1), fixtureReport(2), DiffOptions{})
	if res.Verdict != Fail {
		var sb strings.Builder
		res.Write(&sb)
		t.Fatalf("2x regression: verdict %v, want fail\n%s", res.Verdict, sb.String())
	}
	// The failing lines must include the step wall clock.
	found := false
	for _, l := range res.Lines {
		if l.Metric == "wall_seconds_per_step" && l.Verdict == Fail {
			found = true
			if l.Ratio < 1.9 || l.Ratio > 2.1 {
				t.Errorf("wall ratio %g, want ~2", l.Ratio)
			}
		}
	}
	if !found {
		t.Error("wall_seconds_per_step did not fail")
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	// 2x faster is not a regression.
	if res := Diff(fixtureReport(2), fixtureReport(1), DiffOptions{}); res.Verdict != Pass {
		t.Errorf("2x speedup: verdict %v, want pass", res.Verdict)
	}
}

func TestDiffGFlopsDirection(t *testing.T) {
	// Same timings, halved sustained rate: only gflops regresses; its
	// ratio is inverted (base/cand).
	cand := fixtureReport(1)
	cand.GFlopsSustained /= 2
	res := Diff(fixtureReport(1), cand, DiffOptions{})
	if res.Verdict != Fail {
		t.Fatalf("halved GFLOP/s: verdict %v, want fail", res.Verdict)
	}
	for _, l := range res.Lines {
		if l.Metric == "gflops_sustained" && l.Verdict != Fail {
			t.Errorf("gflops line %+v", l)
		}
	}
}

// TestDiffWarnOnlyCapsNumeric: CI mode — a timing fail becomes warn, but
// structural mismatches still fail.
func TestDiffWarnOnlyCapsNumeric(t *testing.T) {
	res := Diff(fixtureReport(1), fixtureReport(2), DiffOptions{WarnOnly: true})
	if res.Verdict != Warn {
		t.Fatalf("2x regression in warn-only: verdict %v, want warn", res.Verdict)
	}

	// Structural: drop the transpose phase from the candidate.
	cand := fixtureReport(1)
	cand.Phases = nil
	res = Diff(fixtureReport(1), cand, DiffOptions{WarnOnly: true})
	if res.Verdict != Fail {
		t.Fatalf("missing phase in warn-only: verdict %v, want fail", res.Verdict)
	}
}

func TestDiffStructuralMismatches(t *testing.T) {
	mutate := map[string]func(r *Report){
		"schema":  func(r *Report) { r.Schema = "other/v0" },
		"table":   func(r *Report) { r.Table = "table5" },
		"comm op": func(r *Report) { r.Comm = nil },
		"metric":  func(r *Report) { r.Metrics = nil },
	}
	for name, f := range mutate {
		cand := fixtureReport(1)
		f(cand)
		if res := Diff(fixtureReport(1), cand, DiffOptions{WarnOnly: true}); res.Verdict != Fail {
			t.Errorf("%s mismatch: verdict %v, want fail", name, res.Verdict)
		}
	}
}

// TestDiffConfigMismatchInformational: different grids make timing ratios
// meaningless — numeric lines downgrade to Info and cannot fail the diff.
func TestDiffConfigMismatchInformational(t *testing.T) {
	cand := fixtureReport(2) // 2x slower AND a different config
	cand.Config["nx"] = "16"
	res := Diff(fixtureReport(1), cand, DiffOptions{})
	if res.ConfigMatch {
		t.Fatal("config mismatch not detected")
	}
	if res.Verdict > Info {
		var sb strings.Builder
		res.Write(&sb)
		t.Fatalf("config-mismatched diff judged numerically: %v\n%s", res.Verdict, sb.String())
	}
	seen := false
	for _, l := range res.Lines {
		if l.Metric == "wall_seconds_per_step" {
			seen = true
			if l.Verdict != Info {
				t.Errorf("wall line verdict %v, want info", l.Verdict)
			}
		}
	}
	if !seen {
		t.Error("wall_seconds_per_step missing")
	}
}

func TestDiffNoiseFloor(t *testing.T) {
	// Both sides far below the noise floor: even a 3x ratio passes.
	base := fixtureReport(1)
	cand := fixtureReport(3)
	base.WallSeconds, cand.WallSeconds = 3e-6, 9e-6
	base.PhaseSecondsSum, cand.PhaseSecondsSum = 3e-6, 9e-6
	base.Phases[0].MeanRankSeconds, cand.Phases[0].MeanRankSeconds = 1e-6, 3e-6
	base.GFlopsSustained, cand.GFlopsSustained = 0, 0
	base.AllocsPerStep, cand.AllocsPerStep = 0, 0
	if res := Diff(base, cand, DiffOptions{}); res.Verdict != Pass {
		var sb strings.Builder
		res.Write(&sb)
		t.Errorf("sub-noise timings: verdict %v, want pass\n%s", res.Verdict, sb.String())
	}
}

func TestDiffStepNormalization(t *testing.T) {
	// Same per-step cost at different step counts must pass.
	base := fixtureReport(1)
	cand := fixtureReport(1)
	cand.Steps = 6
	cand.WallSeconds *= 2
	cand.PhaseSecondsSum *= 2
	cand.Phases[0].MeanRankSeconds *= 2
	if res := Diff(base, cand, DiffOptions{}); res.Verdict != Pass {
		var sb strings.Builder
		res.Write(&sb)
		t.Errorf("step-normalized diff: verdict %v, want pass\n%s", res.Verdict, sb.String())
	}
}
