// Package telemetry is the observability spine of the reproduction: one
// accounting vocabulary for everything the paper's timing tables measure.
// Each simulated MPI rank owns a Collector; kernels open phase-scoped
// Regions around the leaf operations of a timestep (FFT stages, global
// transposes, banded solves, pointwise products) and bump monotonic
// counters for communication traffic and floating-point work. A Registry
// aggregates the per-rank collectors into the min/mean/max/imbalance
// summaries the paper's per-platform tables report, and report.go encodes
// them as the machine-readable BENCH_*.json artifacts every cmd/bench-*
// tool emits.
//
// The steady-state recording path allocates nothing: spans are value
// types, histograms are fixed arrays bumped with atomic adds, and a nil
// *Collector is a valid no-op sink, so instrumented kernels pay two calls
// to time.Now and a few atomic operations per region when telemetry is
// enabled and almost nothing when it is not. All Collector methods are
// safe for concurrent use; region totals and histogram counts are order-
// independent, which is what makes aggregated reports deterministic for a
// given set of samples regardless of worker interleaving.
package telemetry

import (
	"runtime"
	"sync/atomic"
	"time"

	"channeldns/internal/schedule"
)

// Phase partitions a timestep's wall clock the way the paper's Tables
// 5-11 do. Regions are opened around *leaf* operations (no phase nests
// inside another), so the per-phase totals sum to the instrumented wall
// clock.
//
// The taxonomy itself — the enum, the canonical snake_case names, the
// paper-column mapping — is defined once in internal/schedule (each
// schedule op carries its phase), and aliased here so instrumentation
// sites keep importing telemetry alone.
type Phase = schedule.Phase

// The phase taxonomy, re-exported from internal/schedule (the single
// definition site). See the schedule package for per-phase documentation;
// README "Observability" maps each phase to the paper-table column it
// reproduces.
const (
	PhaseNonlinear    = schedule.PhaseNonlinear
	PhaseFFTForward   = schedule.PhaseFFTForward
	PhaseFFTInverse   = schedule.PhaseFFTInverse
	PhaseTransposeAB  = schedule.PhaseTransposeAB
	PhaseViscousSolve = schedule.PhaseViscousSolve
	PhasePressure     = schedule.PhasePressure
	PhaseCollective   = schedule.PhaseCollective
	PhaseCheckpoint   = schedule.PhaseCheckpoint
	// NumPhases is the number of phases (array extent, not a phase).
	NumPhases = schedule.NumPhases
)

// PhaseFromString inverts Phase.String; ok is false for unknown names.
func PhaseFromString(s string) (Phase, bool) { return schedule.PhaseFromString(s) }

// CommOp identifies one communication channel in the comm accounting:
// the four global transpose directions plus everything else.
type CommOp uint8

// Communication channels.
const (
	CommYtoZ       CommOp = iota // y-pencils -> z-pencils (CommB)
	CommZtoY                     // z-pencils -> y-pencils (CommB)
	CommZtoX                     // z-pencils -> x-pencils (CommA)
	CommXtoZ                     // x-pencils -> z-pencils (CommA)
	CommCollective               // barriers, reductions, broadcasts, gathers
	CommCheckpoint               // checkpoint shard/manifest bytes (internal/ckpt)
	NumCommOps
)

// Channel names: the four schedule transpose directions (the paper's
// labels) plus the catch-all collective channel and the checkpoint-I/O
// channel, sourced from the schedule vocabulary so comm tables and
// schedule blocks agree byte-for-byte.
var commOpNames = [NumCommOps]string{
	schedule.DirYtoZ, schedule.DirZtoY, schedule.DirZtoX, schedule.DirXtoZ,
	schedule.PhaseCollective.String(), schedule.PhaseCheckpoint.String(),
}

// String returns the channel name used in reports (matching the paper's
// transpose direction labels).
func (op CommOp) String() string {
	if op < NumCommOps {
		return commOpNames[op]
	}
	return "unknown"
}

// CommOpFromString inverts CommOp.String; ok is false for unknown names.
func CommOpFromString(s string) (CommOp, bool) {
	for op := CommOp(0); op < NumCommOps; op++ {
		if commOpNames[op] == s {
			return op, true
		}
	}
	return 0, false
}

// Tracer receives every completed phase span when attached to a Collector
// with SetTracer. It is the one-way bridge to the event layer
// (internal/trace implements it): telemetry keeps aggregates, the tracer
// keeps the timeline, and instrumentation sites stay unchanged.
// Implementations must be safe for concurrent use and must not block.
type Tracer interface {
	TraceSpan(p Phase, start, end time.Time)
}

// tracerBox wraps the interface value so the Collector can swap it with a
// single atomic pointer operation (an atomic.Pointer needs a concrete
// pointee type).
type tracerBox struct{ t Tracer }

// phaseRec is the per-phase accumulator inside a Collector.
type phaseRec struct {
	ns     atomic.Int64 // total time inside the phase
	calls  atomic.Int64
	allocs atomic.Int64 // heap objects, only when alloc tracking is on
	hist   Histogram    // per-region latency
}

// commRec is the per-channel communication accumulator.
type commRec struct {
	calls    atomic.Int64
	messages atomic.Int64
	bytes    atomic.Int64
}

// Collector accumulates one rank's telemetry. The zero value is ready to
// use; a nil *Collector is a valid sink whose methods do nothing, so
// instrumented code never branches on "telemetry enabled".
type Collector struct {
	rank int

	phases [NumPhases]phaseRec
	comm   [NumCommOps]commRec

	flops    atomic.Int64
	steps    atomic.Int64
	stepNs   atomic.Int64
	stepHist Histogram

	// allocTrack enables the serial-only per-phase allocation probe; see
	// SetAllocTracking.
	allocTrack atomic.Bool

	// tracer, when attached, receives every completed span; nil pointer =
	// tracing off, one atomic load per Span.End either way.
	tracer atomic.Pointer[tracerBox]
}

// NewCollector returns a collector labeled with an MPI rank. Collectors
// are usually obtained from a Registry; standalone construction is for
// tests and single-rank tools.
func NewCollector(rank int) *Collector { return &Collector{rank: rank} }

// Rank returns the rank label.
func (c *Collector) Rank() int {
	if c == nil {
		return 0
	}
	return c.rank
}

// Span is an open region returned by Begin. It is a value type: starting
// and ending a region performs no heap allocation. End must be called on
// the goroutine's own copy; spans must not be shared.
type Span struct {
	c     *Collector
	phase Phase
	t0    time.Time
	m0    uint64 // Mallocs at Begin, when alloc tracking is on
}

// Begin opens a phase region. On a nil collector it returns an inert span.
func (c *Collector) Begin(p Phase) Span {
	if c == nil {
		return Span{}
	}
	sp := Span{c: c, phase: p, t0: time.Now()}
	if c.allocTrack.Load() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		sp.m0 = ms.Mallocs
	}
	return sp
}

// End closes the region, crediting its duration (and, under alloc
// tracking, its heap-object delta) to the phase.
func (sp Span) End() {
	c := sp.c
	if c == nil {
		return
	}
	d := time.Since(sp.t0)
	rec := &c.phases[sp.phase]
	rec.ns.Add(int64(d))
	rec.calls.Add(1)
	rec.hist.Record(int64(d))
	if c.allocTrack.Load() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		rec.allocs.Add(int64(ms.Mallocs - sp.m0))
	}
	if box := c.tracer.Load(); box != nil {
		box.t.TraceSpan(sp.phase, sp.t0, sp.t0.Add(d))
	}
}

// SetTracer attaches (or, with nil, detaches) the event-layer sink that
// receives every completed span. Safe to call while spans are open;
// in-flight spans observe either the old or the new tracer.
func (c *Collector) SetTracer(t Tracer) {
	if c == nil {
		return
	}
	if t == nil {
		c.tracer.Store(nil)
		return
	}
	c.tracer.Store(&tracerBox{t: t})
}

// AddComm credits one communication operation moving the given payload
// bytes as the given number of point-to-point messages.
func (c *Collector) AddComm(op CommOp, bytes, messages int64) {
	if c == nil {
		return
	}
	rec := &c.comm[op]
	rec.calls.Add(1)
	rec.messages.Add(messages)
	rec.bytes.Add(bytes)
}

// AddFlops credits floating-point work (typically the machine model's
// per-step operation count).
func (c *Collector) AddFlops(n int64) {
	if c == nil {
		return
	}
	c.flops.Add(n)
}

// StepDone records one completed timestep of the given wall-clock
// duration.
func (c *Collector) StepDone(d time.Duration) {
	if c == nil {
		return
	}
	c.steps.Add(1)
	c.stepNs.Add(int64(d))
	c.stepHist.Record(int64(d))
}

// SetAllocTracking toggles the per-phase allocation probe: when on, every
// region samples runtime.ReadMemStats at Begin and End and credits the
// heap-object delta to its phase.
//
// The probe is SERIAL-ONLY by construction: the runtime counters are
// process-wide, so the deltas are exact only when nothing else allocates
// concurrently — one rank, nil worker pool, no background goroutines.
// Multi-rank or pooled runs will attribute other goroutines' allocations
// to whatever phase happens to be open. It is also expensive (ReadMemStats
// briefly stops the world per region) and perturbs timings; keep it off
// for performance runs. Tests asserting exact deltas must skip under the
// race detector (telemetry.RaceEnabled), whose instrumentation allocates.
func (c *Collector) SetAllocTracking(on bool) {
	if c == nil {
		return
	}
	c.allocTrack.Store(on)
}

// PhaseSeconds returns the accumulated wall clock inside a phase.
func (c *Collector) PhaseSeconds(p Phase) float64 {
	if c == nil {
		return 0
	}
	return time.Duration(c.phases[p].ns.Load()).Seconds()
}

// PhaseCalls returns the number of closed regions of a phase.
func (c *Collector) PhaseCalls(p Phase) int64 {
	if c == nil {
		return 0
	}
	return c.phases[p].calls.Load()
}

// PhaseAllocs returns the heap objects credited to a phase by the alloc
// probe (zero unless SetAllocTracking(true) was active).
func (c *Collector) PhaseAllocs(p Phase) int64 {
	if c == nil {
		return 0
	}
	return c.phases[p].allocs.Load()
}

// CommCounts returns the accumulated (calls, messages, bytes) of a
// communication channel.
func (c *Collector) CommCounts(op CommOp) (calls, messages, bytes int64) {
	if c == nil {
		return 0, 0, 0
	}
	rec := &c.comm[op]
	return rec.calls.Load(), rec.messages.Load(), rec.bytes.Load()
}

// Steps returns the number of recorded timesteps.
func (c *Collector) Steps() int64 {
	if c == nil {
		return 0
	}
	return c.steps.Load()
}

// StepSeconds returns the total recorded timestep wall clock.
func (c *Collector) StepSeconds() float64 {
	if c == nil {
		return 0
	}
	return time.Duration(c.stepNs.Load()).Seconds()
}

// Flops returns the accumulated floating-point work.
func (c *Collector) Flops() int64 {
	if c == nil {
		return 0
	}
	return c.flops.Load()
}

// Reset zeroes every accumulator (counters, histograms, step records),
// keeping the rank label. Benchmark harnesses call it after warmup.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	for i := range c.phases {
		rec := &c.phases[i]
		rec.ns.Store(0)
		rec.calls.Store(0)
		rec.allocs.Store(0)
		rec.hist.Reset()
	}
	for i := range c.comm {
		rec := &c.comm[i]
		rec.calls.Store(0)
		rec.messages.Store(0)
		rec.bytes.Store(0)
	}
	c.flops.Store(0)
	c.steps.Store(0)
	c.stepNs.Store(0)
	c.stepHist.Reset()
}
