package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

// TestDeltaSnapshot: movement between two snapshots carries exactly the
// changed phases and comm channels, with increments that reconcile the
// absolute counters.
func TestDeltaSnapshot(t *testing.T) {
	reg := NewRegistry()
	c := reg.Rank(0)

	sp := c.Begin(PhaseNonlinear)
	time.Sleep(time.Millisecond)
	sp.End()
	c.AddComm(CommYtoZ, 1000, 3)
	c.StepDone(2 * time.Millisecond)
	c.AddFlops(500)

	prev := reg.Snapshot()

	// Move one existing phase, exercise a new one, and one comm channel.
	sp = c.Begin(PhaseNonlinear)
	sp.End()
	sp = c.Begin(PhaseViscousSolve)
	sp.End()
	c.AddComm(CommYtoZ, 200, 1)
	c.StepDone(time.Millisecond)
	c.AddFlops(500)

	cur := reg.Snapshot()
	d := DeltaSnapshot(&prev, &cur)

	if d.Empty() {
		t.Fatal("delta between moved snapshots reports Empty")
	}
	if d.DSteps != 1 || d.Steps != 2 {
		t.Errorf("steps delta: got DSteps=%d Steps=%d, want 1, 2", d.DSteps, d.Steps)
	}
	if d.DFlops != 500 {
		t.Errorf("flops delta: got %d, want 500", d.DFlops)
	}
	phases := map[string]PhaseDelta{}
	for _, p := range d.Phases {
		phases[p.Phase] = p
	}
	nl, ok := phases[PhaseNonlinear.String()]
	if !ok || nl.Calls != 1 {
		t.Errorf("nonlinear phase delta: got %+v (present=%v), want 1 call", nl, ok)
	}
	if nl.Seconds <= 0 {
		t.Errorf("nonlinear seconds increment %.9f, want > 0", nl.Seconds)
	}
	vs, ok := phases[PhaseViscousSolve.String()]
	if !ok || vs.Calls != 1 {
		t.Errorf("newly exercised phase delta: got %+v (present=%v), want 1 call", vs, ok)
	}
	if len(d.Comm) != 1 || d.Comm[0].Op != CommYtoZ.String() ||
		d.Comm[0].Bytes != 200 || d.Comm[0].Messages != 1 || d.Comm[0].Calls != 1 {
		t.Errorf("comm delta: got %+v, want one YtoZ entry with 1 call / 1 msg / 200 bytes", d.Comm)
	}
}

// TestDeltaSnapshotIdempotent: no movement means an Empty delta with no
// phase or comm entries — the stream layer's "nothing to send" signal.
func TestDeltaSnapshotIdempotent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Rank(0)
	sp := c.Begin(PhaseFFTForward)
	sp.End()
	c.StepDone(time.Millisecond)

	snap := reg.Snapshot()
	d := DeltaSnapshot(&snap, &snap)
	if !d.Empty() {
		t.Fatalf("self-delta not empty: %+v", d)
	}
	if len(d.Phases) != 0 || len(d.Comm) != 0 {
		t.Fatalf("self-delta carries entries: %+v", d)
	}
	// Cumulative position is still stamped for late joiners.
	if d.Steps != 1 {
		t.Errorf("self-delta Steps = %d, want cumulative 1", d.Steps)
	}
}

// TestDeltaSnapshotJSONCompact: the wire encoding omits unmoved sections
// entirely (the reason deltas exist).
func TestDeltaSnapshotJSONCompact(t *testing.T) {
	reg := NewRegistry()
	c := reg.Rank(0)
	c.StepDone(time.Millisecond)
	prev := reg.Snapshot()
	c.StepDone(time.Millisecond)
	cur := reg.Snapshot()

	b, err := json.Marshal(DeltaSnapshot(&prev, &cur))
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"phases", "comm", "d_flops"} {
		if jsonHasKey(b, forbidden) {
			t.Errorf("unmoved section %q present in %s", forbidden, b)
		}
	}
}

func jsonHasKey(b []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}
