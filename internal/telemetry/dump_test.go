package telemetry

import (
	"reflect"
	"testing"
	"time"
)

// TestDumpRestoreRoundTrip: a registry rebuilt from per-rank dumps must
// aggregate to exactly the snapshot of the original registry — the
// property the TCP transport's report path depends on.
func TestDumpRestoreRoundTrip(t *testing.T) {
	src := NewRegistry()
	for rank := 0; rank < 3; rank++ {
		c := src.Rank(rank)
		for i := 0; i < 4+rank; i++ {
			sp := c.Begin(PhaseNonlinear)
			time.Sleep(time.Microsecond)
			sp.End()
		}
		c.AddComm(CommYtoZ, int64(1000*(rank+1)), int64(rank+1))
		c.AddComm(CommCollective, 64, 2)
		c.AddFlops(int64(1e6 * (rank + 1)))
		c.StepDone(time.Duration(rank+1) * time.Millisecond)
	}

	dst := NewRegistry()
	for rank := 0; rank < 3; rank++ {
		if err := dst.RestoreRank(rank, src.Rank(rank).Dump()); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	a, b := src.Snapshot(), dst.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots diverge:\n src: %+v\n dst: %+v", a, b)
	}
}

// TestDumpFixedShape: every dump has the same documented length, the
// fixed-shape property that lets dumps ride mpi.Gather.
func TestDumpFixedShape(t *testing.T) {
	empty := NewCollector(0)
	busy := NewCollector(1)
	sp := busy.Begin(PhasePressure)
	sp.End()
	busy.AddComm(CommXtoZ, 1, 1)
	if got := len(empty.Dump()); got != DumpLen() {
		t.Errorf("empty dump len %d, want %d", got, DumpLen())
	}
	if got := len(busy.Dump()); got != DumpLen() {
		t.Errorf("busy dump len %d, want %d", got, DumpLen())
	}
	if err := NewCollector(2).addDump(make([]int64, 5)); err == nil {
		t.Error("short dump accepted")
	}
}
