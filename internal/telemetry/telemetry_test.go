package telemetry

import (
	"testing"
	"time"
)

// TestNilCollectorSafe: a nil *Collector must be a complete no-op sink —
// instrumented kernels never branch on "telemetry enabled".
func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	sp := c.Begin(PhaseNonlinear)
	sp.End()
	c.AddComm(CommYtoZ, 100, 2)
	c.AddFlops(5)
	c.StepDone(time.Millisecond)
	c.SetAllocTracking(true)
	c.Reset()
	if c.PhaseSeconds(PhaseNonlinear) != 0 || c.PhaseCalls(PhaseNonlinear) != 0 ||
		c.Steps() != 0 || c.Flops() != 0 || c.Rank() != 0 {
		t.Fatal("nil collector reported nonzero state")
	}
}

// TestRecordingZeroAlloc: the steady-state recording path — Begin/End,
// comm counters, flop counters, step records — must perform zero heap
// allocations. This is what lets the instrumented RK3 step stay inside
// the repo's 64-object budget.
func TestRecordingZeroAlloc(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	c := NewCollector(0)
	allocs := testing.AllocsPerRun(100, func() {
		sp := c.Begin(PhaseTransposeAB)
		sp.End()
		c.AddComm(CommZtoX, 4096, 3)
		c.AddFlops(1000)
		c.StepDone(time.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("recording path: %v allocs per cycle, want 0", allocs)
	}
}

// TestCollectorAccumulation: totals, calls and comm counters must
// accumulate exactly.
func TestCollectorAccumulation(t *testing.T) {
	c := NewCollector(3)
	for i := 0; i < 5; i++ {
		sp := c.Begin(PhaseViscousSolve)
		sp.End()
	}
	c.AddComm(CommXtoZ, 100, 2)
	c.AddComm(CommXtoZ, 50, 1)
	c.AddFlops(10)
	c.AddFlops(20)
	if got := c.PhaseCalls(PhaseViscousSolve); got != 5 {
		t.Errorf("calls = %d, want 5", got)
	}
	if calls, msgs, bytes := c.CommCounts(CommXtoZ); calls != 2 || msgs != 3 || bytes != 150 {
		t.Errorf("comm = (%d, %d, %d), want (2, 3, 150)", calls, msgs, bytes)
	}
	if c.Flops() != 30 {
		t.Errorf("flops = %d, want 30", c.Flops())
	}
	if c.Rank() != 3 {
		t.Errorf("rank = %d", c.Rank())
	}
	c.Reset()
	if c.PhaseCalls(PhaseViscousSolve) != 0 || c.Flops() != 0 {
		t.Error("Reset did not zero accumulators")
	}
}

// TestAllocTrackingSerial: with the serial-only alloc probe on, a region
// that allocates must be charged at least that many heap objects, and a
// region that does not allocate must be charged none. Guarded against
// -race, whose shadow-memory allocations make exact counts meaningless.
func TestAllocTrackingSerial(t *testing.T) {
	if RaceEnabled {
		t.Skip("alloc probe counts are perturbed under -race (documented serial-only, exact-count use)")
	}
	c := NewCollector(0)
	c.SetAllocTracking(true)

	sink := make([]*[64]byte, 0, 16)
	sp := c.Begin(PhaseNonlinear)
	for i := 0; i < 10; i++ {
		sink = append(sink, new([64]byte))
	}
	sp.End()
	if got := c.PhaseAllocs(PhaseNonlinear); got < 10 {
		t.Errorf("alloc probe charged %d objects, want >= 10", got)
	}
	_ = sink

	before := c.PhaseAllocs(PhaseViscousSolve)
	sp = c.Begin(PhaseViscousSolve)
	sp.End()
	if got := c.PhaseAllocs(PhaseViscousSolve) - before; got != 0 {
		t.Errorf("empty region charged %d objects, want 0", got)
	}

	c.SetAllocTracking(false)
	sp = c.Begin(PhasePressure)
	_ = make([]byte, 1024)
	sp.End()
	if got := c.PhaseAllocs(PhasePressure); got != 0 {
		t.Errorf("probe off but charged %d objects", got)
	}
}

// TestPhaseNamesRoundTrip: every phase name must survive the
// string/enum round trip the JSON validator uses.
func TestPhaseNamesRoundTrip(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, ok := PhaseFromString(p.String())
		if !ok || got != p {
			t.Errorf("phase %d: round trip via %q failed", p, p.String())
		}
	}
	if _, ok := PhaseFromString("nope"); ok {
		t.Error("unknown phase name accepted")
	}
}
