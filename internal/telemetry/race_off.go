//go:build !race

package telemetry

// RaceEnabled reports whether the binary was built with the race
// detector. Exact-allocation assertions (the alloc probe, the
// steady-state budgets) must skip when it is true: the race runtime
// allocates shadow state on instrumented operations, which perturbs every
// process-wide allocation counter.
const RaceEnabled = false
