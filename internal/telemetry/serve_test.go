package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// get fetches a URL and returns the body, failing the test on any error.
func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// sampleRegistry returns a registry with one rank carrying a little
// activity, so snapshots and reports are non-degenerate.
func sampleRegistry(stepNs int64) *Registry {
	reg := NewRegistry()
	c := reg.Rank(0)
	sp := c.Begin(PhaseNonlinear)
	sp.End()
	c.AddComm(CommYtoZ, 1024, 3)
	c.StepDone(time.Duration(stepNs))
	return reg
}

func handlerFor(reg *Registry) (h *httptest.Server, close func()) {
	srv := httptest.NewServer(Handler(reg, func() *Report {
		return NewReport("dns", reg, map[string]string{"test": "1"})
	}))
	return srv, srv.Close
}

// TestTelemetryEndpointCanonical: /telemetry must return canonical JSON
// that parses and validates as a channeldns/bench/v1 report.
func TestTelemetryEndpointCanonical(t *testing.T) {
	srv, done := handlerFor(sampleRegistry(1e6))
	defer done()
	rr := get(t, srv.URL+"/telemetry")
	rep, err := ValidateJSON(rr)
	if err != nil {
		t.Fatalf("/telemetry body invalid: %v", err)
	}
	if rep.Table != "dns" || rep.Ranks != 1 {
		t.Errorf("report %+v", rep)
	}
}

// TestDebugVarsIncludesTelemetry: /debug/vars carries the published
// channeldns.telemetry snapshot.
func TestDebugVarsIncludesTelemetry(t *testing.T) {
	srv, done := handlerFor(sampleRegistry(1e6))
	defer done()
	raw := get(t, srv.URL+"/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	snap, ok := vars["channeldns.telemetry"]
	if !ok {
		t.Fatal("/debug/vars missing channeldns.telemetry")
	}
	var s Snapshot
	if err := json.Unmarshal(snap, &s); err != nil {
		t.Fatalf("published snapshot not a Snapshot: %v", err)
	}
	if s.Ranks != 1 {
		t.Errorf("published snapshot %+v", s)
	}
}

// TestPublishTracksCurrentRegistry is the regression test for the
// publishOnce latch: before the fix, the expvar closure captured the first
// Handler call's registry forever, so a second run in the same process
// published stale snapshots. The published var must follow the most recent
// Handler call.
func TestPublishTracksCurrentRegistry(t *testing.T) {
	first := sampleRegistry(1e6)
	srv1, done1 := handlerFor(first)
	done1()
	_ = srv1

	second := NewRegistry()
	second.Rank(0)
	second.Rank(1)
	second.Rank(2) // distinguishable: 3 ranks vs 1
	srv2, done2 := handlerFor(second)
	defer done2()

	raw := get(t, srv2.URL+"/debug/vars")
	var vars struct {
		Snap Snapshot `json:"channeldns.telemetry"`
	}
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Snap.Ranks != 3 {
		t.Errorf("published snapshot has %d ranks, want 3 (the current registry) — stale latch", vars.Snap.Ranks)
	}
}

// TestHandlerNeverBlocksRecording: the endpoint must serve while steps are
// advancing — snapshots read atomic counters and never take locks held
// across recording.
func TestHandlerNeverBlocksRecording(t *testing.T) {
	reg := sampleRegistry(1e6)
	srv, done := handlerFor(reg)
	defer done()
	c := reg.Rank(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sp := c.Begin(PhaseTransposeAB)
			sp.End()
			c.StepDone(time.Microsecond)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 20; i++ {
		if time.Now().After(deadline) {
			t.Fatal("handler requests did not complete while a step was advancing")
		}
		if _, err := ValidateJSON(get(t, srv.URL+"/telemetry")); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestServeHandler(t *testing.T) {
	reg := sampleRegistry(1e6)
	addr, err := ServeHandler("127.0.0.1:0", Handler(reg, func() *Report {
		return NewReport("dns", reg, nil)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(addr, ":") {
		t.Fatalf("bound address %q", addr)
	}
	if _, err := ValidateJSON(get(t, "http://"+addr+"/telemetry")); err != nil {
		t.Errorf("ServeHandler endpoint: %v", err)
	}
}
