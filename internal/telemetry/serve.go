package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Live endpoint: cmd/dns -listen exposes the standard Go observability
// surface next to the run's telemetry, so a long simulation can be
// inspected without stopping it:
//
//	/debug/pprof/...   net/http/pprof profiles (CPU, heap, goroutines)
//	/debug/vars        expvar (runtime memstats + the published snapshot)
//	/telemetry         the current aggregated Report as canonical JSON
//
// The handler never blocks the simulation: snapshots read atomic counters.

var publishOnce sync.Once

// Handler returns the observability mux for a registry. report builds the
// current Report on demand (typically a closure over the run's table name
// and config fingerprint).
func Handler(reg *Registry, report func() *Report) http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("channeldns.telemetry", expvar.Func(func() any {
			return reg.Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := report().Encode(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Serve starts the observability endpoint on addr (e.g. "localhost:6060";
// ":0" picks a free port) and returns the bound address. The server runs
// on a background goroutine for the life of the process.
func Serve(addr string, reg *Registry, report func() *Report) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	h := Handler(reg, report)
	go func() { _ = http.Serve(ln, h) }()
	return ln.Addr().String(), nil
}
