package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Live endpoint: cmd/dns -listen exposes the standard Go observability
// surface next to the run's telemetry, so a long simulation can be
// inspected without stopping it:
//
//	/debug/pprof/...   net/http/pprof profiles (CPU, heap, goroutines)
//	/debug/vars        expvar (runtime memstats + the published snapshot)
//	/telemetry         the current aggregated Report as canonical JSON
//
// The handler never blocks the simulation: snapshots read atomic counters.

// The expvar name "channeldns.telemetry" can be published only once per
// process (expvar.Publish panics on reuse), but successive runs in one
// process each bring their own Registry. The published closure therefore
// reads a process-global current-registry pointer that every Handler call
// updates, so /debug/vars always reflects the most recent run instead of
// latching onto the first (the pre-fix behavior).
var (
	publishOnce sync.Once
	publishMu   sync.Mutex
	publishReg  *Registry
)

// Identity names a process's place in a distributed run, for the
// endpoint's index page: without it, a rank's -listen endpoint looks like
// a whole run instead of one rank of a world.
type Identity struct {
	Rank, World int
	Transport   string
}

// Handler returns the observability mux for a registry. report builds the
// current Report on demand (typically a closure over the run's table name
// and config fingerprint).
func Handler(reg *Registry, report func() *Report) http.Handler {
	return HandlerWithIdentity(reg, report, Identity{})
}

// HandlerWithIdentity is Handler plus an index page at / identifying
// which rank of which world this process is.
func HandlerWithIdentity(reg *Registry, report func() *Report, id Identity) http.Handler {
	publishMu.Lock()
	publishReg = reg
	publishMu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("channeldns.telemetry", expvar.Func(func() any {
			publishMu.Lock()
			r := publishReg
			publishMu.Unlock()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := report().Encode(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if id.World > 1 {
			fmt.Fprintf(w, "channeldns rank %d of world %d (transport %s)\n", id.Rank, id.World, id.Transport)
			fmt.Fprintf(w, "per-rank view: /telemetry and /trace cover this rank only;\n")
			fmt.Fprintf(w, "rank 0 serves the world view on /metrics and /status.\n\n")
		} else {
			fmt.Fprintf(w, "channeldns run\n\n")
		}
		fmt.Fprint(w, "endpoints:\n  /telemetry\n  /metrics\n  /status\n  /trace\n  /debug/vars\n  /debug/pprof/\n")
	})
	return mux
}

// Serve starts the observability endpoint on addr (e.g. "localhost:6060";
// ":0" picks a free port) and returns the bound address. The server runs
// on a background goroutine for the life of the process.
func Serve(addr string, reg *Registry, report func() *Report) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	h := Handler(reg, report)
	go func() { _ = http.Serve(ln, h) }()
	return ln.Addr().String(), nil
}

// ServeHandler is Serve for a caller-assembled handler — cmd/dns uses it
// to mount /trace next to the telemetry mux.
func ServeHandler(addr string, h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, h) }()
	return ln.Addr().String(), nil
}
