package telemetry

import "fmt"

// Cross-process rank merging. On the in-process transports every rank's
// Collector lives in one Registry, so reports see the whole world for
// free. On the TCP transport each rank is its own OS process with a
// single-collector registry; before rank 0 writes the report, every rank
// Dumps its collector to a fixed-shape []int64 and the dumps ride an
// ordinary mpi.Gather (fixed shape is what makes the gather legal) so
// rank 0 can RestoreRank them into its registry. The merged registry is
// indistinguishable from an in-process run's: the same min/mean/max/
// imbalance aggregation, the same histogram quantiles, the same
// schedule-consistency cross-checks in bench-validate.

// dumpLen is the fixed length of a collector dump: per phase the time,
// call and alloc counters plus the latency histogram buckets; per comm
// channel its three counters; then flops, steps, step time, and the
// step-latency histogram.
const dumpLen = int(NumPhases)*(3+histBuckets) + int(NumCommOps)*3 + 3 + histBuckets

// DumpLen returns the length of every Collector.Dump result.
func DumpLen() int { return dumpLen }

// Dump serializes the collector's accumulators into a fixed-shape
// []int64. Concurrent recording during Dump yields a torn-but-valid
// snapshot (each counter individually atomic), which is the same
// guarantee Snapshot gives; callers quiesce ranks (a barrier) first when
// they need exact totals.
func (c *Collector) Dump() []int64 {
	out := make([]int64, 0, dumpLen)
	for i := range c.phases {
		rec := &c.phases[i]
		out = append(out, rec.ns.Load(), rec.calls.Load(), rec.allocs.Load())
		for b := 0; b < histBuckets; b++ {
			out = append(out, rec.hist.counts[b].Load())
		}
	}
	for i := range c.comm {
		rec := &c.comm[i]
		out = append(out, rec.calls.Load(), rec.messages.Load(), rec.bytes.Load())
	}
	out = append(out, c.flops.Load(), c.steps.Load(), c.stepNs.Load())
	for b := 0; b < histBuckets; b++ {
		out = append(out, c.stepHist.counts[b].Load())
	}
	return out
}

// addDump merges a dump into the collector by addition, so restoring
// onto a fresh collector reproduces the remote one exactly.
func (c *Collector) addDump(d []int64) error {
	if len(d) != dumpLen {
		return fmt.Errorf("telemetry: dump of %d values, want %d (schema drift between ranks?)", len(d), dumpLen)
	}
	k := 0
	next := func() int64 { v := d[k]; k++; return v }
	for i := range c.phases {
		rec := &c.phases[i]
		rec.ns.Add(next())
		rec.calls.Add(next())
		rec.allocs.Add(next())
		for b := 0; b < histBuckets; b++ {
			if n := next(); n != 0 {
				rec.hist.counts[b].Add(n)
				rec.hist.total.Add(n)
			}
		}
	}
	for i := range c.comm {
		rec := &c.comm[i]
		rec.calls.Add(next())
		rec.messages.Add(next())
		rec.bytes.Add(next())
	}
	c.flops.Add(next())
	c.steps.Add(next())
	c.stepNs.Add(next())
	for b := 0; b < histBuckets; b++ {
		if n := next(); n != 0 {
			c.stepHist.counts[b].Add(n)
			c.stepHist.total.Add(n)
		}
	}
	return nil
}

// RestoreRank merges a remote rank's dump into this registry, creating
// the rank's collector if needed. Restoring twice double-counts; restore
// each remote rank exactly once.
func (r *Registry) RestoreRank(rank int, dump []int64) error {
	return r.Rank(rank).addDump(dump)
}

// DumpView is a read-only decoded view over one collector dump, for
// consumers that want individual counters without restoring into a
// registry (the world tracker reads step and phase counters out of
// heartbeat dumps this way). The view aliases the dump slice.
type DumpView struct{ d []int64 }

// ViewDump wraps a dump for field access; ok is false when the slice is
// not dump-shaped.
func ViewDump(d []int64) (DumpView, bool) {
	if len(d) != dumpLen {
		return DumpView{}, false
	}
	return DumpView{d: d}, true
}

// PhaseNs returns the accumulated nanoseconds of a phase.
func (v DumpView) PhaseNs(p Phase) int64 { return v.d[int(p)*(3+histBuckets)] }

// PhaseCalls returns the closed-region count of a phase.
func (v DumpView) PhaseCalls(p Phase) int64 { return v.d[int(p)*(3+histBuckets)+1] }

// CommCounts returns the (calls, messages, bytes) counters of a channel.
func (v DumpView) CommCounts(op CommOp) (calls, messages, bytes int64) {
	base := int(NumPhases)*(3+histBuckets) + int(op)*3
	return v.d[base], v.d[base+1], v.d[base+2]
}

// Steps returns the completed-timestep count.
func (v DumpView) Steps() int64 { return v.d[int(NumPhases)*(3+histBuckets)+int(NumCommOps)*3+1] }

// StepNs returns the accumulated timestep nanoseconds.
func (v DumpView) StepNs() int64 { return v.d[int(NumPhases)*(3+histBuckets)+int(NumCommOps)*3+2] }

// Flops returns the accumulated floating-point work.
func (v DumpView) Flops() int64 { return v.d[int(NumPhases)*(3+histBuckets)+int(NumCommOps)*3] }
