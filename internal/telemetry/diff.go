package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// Report diffing: the perf-regression gate behind cmd/bench-diff. Two
// BENCH_*.json artifacts are compared metric-by-metric against ratio
// thresholds; the result is a per-metric line list and an overall
// pass/warn/fail verdict. Two comparison classes behave differently:
//
//   - structural checks (schema, table, phase/comm/metric presence) guard
//     the artifact's shape and always fail hard — a missing phase means the
//     instrumentation broke, not that the machine was slow;
//   - numeric checks (per-step timings, sustained rate, allocations) are
//     machine-dependent, so WarnOnly mode — what CI uses when comparing
//     against a baseline committed from another machine — caps them at
//     Warn. When the two reports' config fingerprints differ (different
//     grid, ranks, threads), numeric comparisons are informational only:
//     comparing a 32-cubed run against a 16-cubed run tells you nothing
//     about regressions.
//
// Timings are normalized per step before comparison so baselines with
// different step counts remain comparable.

// Verdict is the outcome of one comparison, or of a whole diff (the max
// over its lines).
type Verdict int

// Verdicts, ordered by severity.
const (
	Pass Verdict = iota
	// Info marks a numeric comparison rendered non-judgmental by a config
	// mismatch: shown, never counted.
	Info
	Warn
	Fail
)

var verdictNames = [...]string{"pass", "info", "warn", "fail"}

// String returns the lowercase verdict name.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "unknown"
}

// DiffOptions sets comparison thresholds. The zero value is usable:
// defaults are applied by Diff.
type DiffOptions struct {
	// WarnRatio and FailRatio bound the candidate/baseline ratio of
	// lower-is-better metrics (inverted for higher-is-better ones like
	// sustained GFLOP/s). Defaults: 1.25 and 1.5 — an injected 2x
	// regression fails, run-to-run jitter passes.
	WarnRatio float64
	FailRatio float64
	// MinSeconds is the noise floor: per-step timings where both sides sit
	// below it are too short to judge and report Pass with a note.
	// Default 100us.
	MinSeconds float64
	// WarnOnly caps numeric verdicts at Warn (structural failures still
	// fail) — CI mode for cross-machine comparisons.
	WarnOnly bool
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.WarnRatio <= 0 {
		o.WarnRatio = 1.25
	}
	if o.FailRatio <= 0 {
		o.FailRatio = 1.5
	}
	if o.MinSeconds <= 0 {
		o.MinSeconds = 100e-6
	}
	return o
}

// DiffLine is one compared metric.
type DiffLine struct {
	Metric  string  // stable snake_case name, e.g. "phase.transpose.mean_rank_seconds_per_step"
	Base    float64 // baseline value (per-step where applicable)
	Cand    float64 // candidate value
	Ratio   float64 // cand/base for lower-is-better, base/cand for higher-is-better; 0 when undefined
	Verdict Verdict
	Note    string // human context: "structural", "below noise floor", ...
}

// DiffResult is the full comparison.
type DiffResult struct {
	Verdict     Verdict
	ConfigMatch bool // fingerprints equal; false downgrades numeric lines to Info
	Lines       []DiffLine
}

// add records a line and folds its verdict into the total.
func (d *DiffResult) add(l DiffLine) {
	d.Lines = append(d.Lines, l)
	if l.Verdict > d.Verdict {
		d.Verdict = l.Verdict
	}
}

// perStep normalizes a run-total quantity by the report's step count
// (reports without steps — table5/table6 style — pass through untouched).
func perStep(total float64, steps int64) float64 {
	if steps > 1 {
		return total / float64(steps)
	}
	return total
}

// Diff compares candidate against baseline under the given options.
func Diff(base, cand *Report, opt DiffOptions) *DiffResult {
	opt = opt.withDefaults()
	d := &DiffResult{ConfigMatch: configEqual(base.Config, cand.Config)}

	// Structural gate: shape mismatches always fail.
	structural := func(metric string, ok bool, note string) {
		v := Pass
		if !ok {
			v = Fail
		}
		d.add(DiffLine{Metric: metric, Verdict: v, Note: note})
	}
	structural("schema", base.Schema == cand.Schema,
		fmt.Sprintf("base %q cand %q", base.Schema, cand.Schema))
	structural("table", base.Table == cand.Table,
		fmt.Sprintf("base %q cand %q", base.Table, cand.Table))
	// Workload mismatch is structural, not numeric drift: comparing a
	// channel run against an isotropic run is an artifact-wiring error no
	// ratio threshold should paper over. Reports predating the workload
	// registry carry no key on either side and skip the line.
	bwl, bok := base.Config["workload"]
	cwl, cok := cand.Config["workload"]
	if bok || cok {
		structural("workload", bwl == cwl,
			fmt.Sprintf("base %q cand %q", bwl, cwl))
	}

	candPhases := map[string]PhaseStats{}
	for _, p := range cand.Phases {
		candPhases[p.Phase] = p
	}
	for _, p := range base.Phases {
		cp, ok := candPhases[p.Phase]
		structural("phase."+p.Phase+".present", ok, "instrumented phase set")
		if !ok {
			continue
		}
		d.numeric(opt, "phase."+p.Phase+".mean_rank_seconds_per_step",
			perStep(p.MeanRankSeconds, base.Steps), perStep(cp.MeanRankSeconds, cand.Steps), false)
	}
	candComm := map[string]CommStats{}
	for _, c := range cand.Comm {
		candComm[c.Op] = c
	}
	for _, c := range base.Comm {
		_, ok := candComm[c.Op]
		structural("comm."+c.Op+".present", ok, "instrumented comm channel")
	}
	// One-sided: a baseline without a schedule block (pre-schedule artifact)
	// asks nothing of the candidate.
	if base.Schedule != nil {
		structural("schedule.present", cand.Schedule != nil, "declarative schedule block")
	}
	candMetrics := map[string]bool{}
	for k := range cand.Metrics {
		candMetrics[k] = true
	}
	baseMetricNames := make([]string, 0, len(base.Metrics))
	for k := range base.Metrics {
		baseMetricNames = append(baseMetricNames, k)
	}
	sort.Strings(baseMetricNames)
	for _, k := range baseMetricNames {
		structural("metrics."+k+".present", candMetrics[k], "metric presence")
	}

	// Numeric gate: machine-dependent quantities, normalized per step.
	d.numeric(opt, "wall_seconds_per_step",
		perStep(base.WallSeconds, base.Steps), perStep(cand.WallSeconds, cand.Steps), false)
	d.numeric(opt, "phase_seconds_sum_per_step",
		perStep(base.PhaseSecondsSum, base.Steps), perStep(cand.PhaseSecondsSum, cand.Steps), false)
	if base.GFlopsSustained > 0 && cand.GFlopsSustained > 0 {
		d.numeric(opt, "gflops_sustained", base.GFlopsSustained, cand.GFlopsSustained, true)
	}
	if base.AllocsPerStep > 0 || cand.AllocsPerStep > 0 {
		d.numeric(opt, "allocs_per_step", base.AllocsPerStep, cand.AllocsPerStep, false)
	}
	return d
}

// numeric compares one machine-dependent quantity. higherBetter inverts
// the ratio (a drop in GFLOP/s is the regression).
func (d *DiffResult) numeric(opt DiffOptions, metric string, base, cand float64, higherBetter bool) {
	l := DiffLine{Metric: metric, Base: base, Cand: cand}
	switch {
	case base <= 0 && cand <= 0:
		l.Note = "both zero"
	case base <= 0:
		l.Verdict = Warn
		l.Note = "no baseline value"
	default:
		if higherBetter {
			l.Ratio = base / cand
		} else {
			l.Ratio = cand / base
		}
		switch {
		case !d.ConfigMatch:
			l.Verdict = Info
			l.Note = "config differs; informational"
		case !higherBetter && base < opt.MinSeconds && cand < opt.MinSeconds:
			l.Note = "below noise floor"
		case l.Ratio >= opt.FailRatio:
			l.Verdict = Fail
			l.Note = fmt.Sprintf("regression ≥ %.2fx", opt.FailRatio)
		case l.Ratio >= opt.WarnRatio:
			l.Verdict = Warn
			l.Note = fmt.Sprintf("regression ≥ %.2fx", opt.WarnRatio)
		}
	}
	if opt.WarnOnly && l.Verdict == Fail {
		l.Verdict = Warn
		l.Note += " (warn-only mode)"
	}
	d.add(l)
}

// configEqual reports whether two config fingerprints are identical.
func configEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// Write renders the diff as the fixed-width table cmd/bench-diff prints.
func (d *DiffResult) Write(w io.Writer) {
	fmt.Fprintf(w, "%-5s  %-48s  %12s  %12s  %7s  %s\n",
		"", "metric", "base", "cand", "ratio", "note")
	for _, l := range d.Lines {
		ratio := ""
		if l.Ratio > 0 {
			ratio = fmt.Sprintf("%.3f", l.Ratio)
		}
		val := func(v float64) string {
			if v == 0 {
				return ""
			}
			return fmt.Sprintf("%.6g", v)
		}
		fmt.Fprintf(w, "%-5s  %-48s  %12s  %12s  %7s  %s\n",
			l.Verdict.String(), l.Metric, val(l.Base), val(l.Cand), ratio, l.Note)
	}
	fmt.Fprintf(w, "verdict: %s\n", d.Verdict)
}
