package telemetry

import (
	"math"
	"testing"
)

// TestHistogramEmpty: the zero value reports zero samples and zero
// quantiles — the "no samples" edge the report builder relies on to drop
// unsampled phases.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatalf("empty Count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%g) = %d, want 0", q, v)
		}
	}
	if h.Max() != 0 {
		t.Errorf("empty Max = %d", h.Max())
	}
}

// TestHistogramSingleSample: every quantile of a one-sample histogram
// must bound that sample with the bucket's 12.5% resolution.
func TestHistogramSingleSample(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 8, 100, 1_000_003, 1 << 40} {
		var h Histogram
		h.Record(v)
		if h.Count() != 1 {
			t.Fatalf("Count = %d", h.Count())
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			got := h.Quantile(q)
			if got < v {
				t.Errorf("v=%d: Quantile(%g) = %d below sample", v, q, got)
			}
			if v > 0 && float64(got) > float64(v)*1.125+1 {
				t.Errorf("v=%d: Quantile(%g) = %d exceeds resolution bound", v, q, got)
			}
		}
	}
}

// TestHistogramOverflowBucket: extreme values (up to MaxInt64) and
// negative values must land in the clamping buckets without panicking or
// corrupting counts.
func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Record(math.MaxInt64)
	h.Record(1 << 62)
	h.Record(-5)
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("min bound = %d, want 0 (negative clamps to bucket 0)", got)
	}
	if got := h.Max(); got < math.MaxInt64/2 {
		t.Errorf("Max = %d, does not bound MaxInt64 region", got)
	}
	// The top bucket index must stay in range for any input.
	if idx := bucketOf(math.MaxInt64); idx >= histBuckets {
		t.Errorf("bucketOf(MaxInt64) = %d out of range", idx)
	}
}

// TestHistogramBucketBoundsMonotonic: bucket upper bounds must be
// strictly increasing past the linear range, and bucketOf must be
// consistent with bucketUpper (a value is <= its bucket's upper bound and
// > the previous bucket's).
func TestHistogramBucketBoundsMonotonic(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		u := bucketUpper(i)
		if u <= prev {
			t.Fatalf("bucketUpper(%d) = %d not increasing (prev %d)", i, u, prev)
		}
		prev = u
	}
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 255, 256, 1 << 20, 1<<20 + 12345} {
		idx := bucketOf(v)
		if v > bucketUpper(idx) {
			t.Errorf("v=%d above its bucket %d upper %d", v, idx, bucketUpper(idx))
		}
		if idx > 0 && v <= bucketUpper(idx-1) {
			t.Errorf("v=%d should be in bucket %d or lower", v, idx-1)
		}
	}
}

// TestHistogramQuantileOrder: p50 <= p99 <= max on a spread of samples,
// and the median bound sits near the true median.
func TestHistogramQuantileOrder(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	p50, p99, mx := h.Quantile(0.5), h.Quantile(0.99), h.Max()
	if !(p50 <= p99 && p99 <= mx) {
		t.Fatalf("quantiles out of order: p50=%d p99=%d max=%d", p50, p99, mx)
	}
	if p50 < 500 || float64(p50) > 500*1.125+1 {
		t.Errorf("p50 = %d, want ~500 within resolution", p50)
	}
}

// TestHistogramMerge: merging must equal recording the union, bucket by
// bucket.
func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(i * 3)
		b.Record(i * 7)
		both.Record(i * 3)
		both.Record(i * 7)
	}
	a.Merge(&b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), both.Count())
	}
	for i := 0; i < histBuckets; i++ {
		if a.counts[i].Load() != both.counts[i].Load() {
			t.Fatalf("bucket %d: merged %d != direct %d", i, a.counts[i].Load(), both.counts[i].Load())
		}
	}
	a.Merge(nil) // must be a no-op
	if a.Count() != both.Count() {
		t.Fatalf("Merge(nil) changed count")
	}
}
