// Package field carries the spectral grid bookkeeping shared by the solver,
// the statistics module and the benchmark tools: mode counts, wavenumber
// values, the 3/2-rule quadrature grid sizes, and the storage conventions
// for spectral fields.
//
// Conventions. A real field q(x, y, z) on the channel (x, z periodic with
// lengths Lx, Lz; y in [-1, 1]) is represented as
//
//	q(x, y, z) = sum_{kx=0..NKx-1} sum_{kz} qhat(kx, kz, y) e^{i(ax*kx*x + az*kz'*z)} + c.c.(kx>0)
//
// with ax = 2*pi/Lx, az = 2*pi/Lz. The x direction stores NKx = Nx/2
// one-sided modes (the Nyquist mode is not carried, following the paper's
// customized kernel); the z direction stores Nz modes in FFT wrap order
// with the Nyquist slot held at zero. kz' is the signed wavenumber of wrap
// slot kz.
package field

import (
	"fmt"
	"math"
)

// Grid describes the spectral resolution and domain of a channel field.
type Grid struct {
	Nx, Ny, Nz int     // full x modes, y basis size, full z modes
	Lx, Lz     float64 // periodic domain lengths
}

// NewGrid validates and returns a Grid. Nx and Nz must be even and >= 4.
func NewGrid(nx, ny, nz int, lx, lz float64) Grid {
	if nx < 4 || nx%2 != 0 || nz < 4 || nz%2 != 0 {
		panic(fmt.Sprintf("field: Nx=%d Nz=%d must be even and >= 4", nx, nz))
	}
	if ny < 4 {
		panic(fmt.Sprintf("field: Ny=%d must be >= 4", ny))
	}
	if lx <= 0 || lz <= 0 {
		panic("field: domain lengths must be positive")
	}
	return Grid{Nx: nx, Ny: ny, Nz: nz, Lx: lx, Lz: lz}
}

// NKx returns the number of one-sided x modes carried (Nyquist dropped).
func (g Grid) NKx() int { return g.Nx / 2 }

// MX returns the 3/2-rule physical grid size in x.
func (g Grid) MX() int { return 3 * g.Nx / 2 }

// MZ returns the 3/2-rule physical grid size in z.
func (g Grid) MZ() int { return 3 * g.Nz / 2 }

// Alpha returns the fundamental x wavenumber 2*pi/Lx.
func (g Grid) Alpha() float64 { return 2 * math.Pi / g.Lx }

// Beta returns the fundamental z wavenumber 2*pi/Lz.
func (g Grid) Beta() float64 { return 2 * math.Pi / g.Lz }

// Kx returns the physical x wavenumber of one-sided mode index i.
func (g Grid) Kx(i int) float64 { return g.Alpha() * float64(i) }

// KzIndex returns the signed z mode number of wrap slot j: j for
// j < Nz/2, j-Nz for j > Nz/2, and 0 for the (empty) Nyquist slot.
func (g Grid) KzIndex(j int) int {
	if j < g.Nz/2 {
		return j
	}
	if j == g.Nz/2 {
		return 0 // Nyquist slot, always zero
	}
	return j - g.Nz
}

// Kz returns the physical z wavenumber of wrap slot j.
func (g Grid) Kz(j int) float64 { return g.Beta() * float64(g.KzIndex(j)) }

// K2 returns kx^2 + kz^2 for mode (i, j).
func (g Grid) K2(i, j int) float64 {
	kx, kz := g.Kx(i), g.Kz(j)
	return kx*kx + kz*kz
}

// IsNyquistZ reports whether wrap slot j is the (uncarried) z Nyquist mode.
func (g Grid) IsNyquistZ(j int) bool { return j == g.Nz/2 }

// DOF returns the number of real degrees of freedom of one field:
// three velocity components are DOF()*3 as the paper counts them.
func (g Grid) DOF() int { return g.Nx * g.Ny * g.Nz }

// ConjIndexZ returns the wrap slot holding the conjugate partner of slot j
// on the kx = 0 plane: slot of -kz'.
func (g Grid) ConjIndexZ(j int) int {
	if j == 0 || j == g.Nz/2 {
		return j
	}
	return g.Nz - j
}
