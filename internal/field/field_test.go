package field

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(16, 24, 8, 2*math.Pi, math.Pi)
	if g.NKx() != 8 || g.MX() != 24 || g.MZ() != 12 {
		t.Errorf("NKx=%d MX=%d MZ=%d", g.NKx(), g.MX(), g.MZ())
	}
	if math.Abs(g.Alpha()-1) > 1e-15 || math.Abs(g.Beta()-2) > 1e-15 {
		t.Errorf("alpha=%g beta=%g", g.Alpha(), g.Beta())
	}
	if g.Kx(3) != 3 {
		t.Errorf("Kx(3)=%g", g.Kx(3))
	}
	if g.DOF() != 16*24*8 {
		t.Errorf("DOF=%d", g.DOF())
	}
}

func TestKzWrapOrder(t *testing.T) {
	g := NewGrid(8, 8, 8, 2*math.Pi, 2*math.Pi)
	want := []int{0, 1, 2, 3, 0, -3, -2, -1} // slot 4 = Nyquist -> 0
	for j, w := range want {
		if got := g.KzIndex(j); got != w {
			t.Errorf("KzIndex(%d)=%d want %d", j, got, w)
		}
	}
	if !g.IsNyquistZ(4) || g.IsNyquistZ(3) {
		t.Error("Nyquist detection wrong")
	}
}

func TestConjIndexZ(t *testing.T) {
	g := NewGrid(8, 8, 16, 2*math.Pi, 2*math.Pi)
	f := func(seed int64) bool {
		for j := 0; j < 16; j++ {
			jc := g.ConjIndexZ(j)
			if g.KzIndex(jc) != -g.KzIndex(j) {
				return false
			}
			if g.ConjIndexZ(jc) != j {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1}); err != nil {
		t.Error(err)
	}
}

func TestK2(t *testing.T) {
	g := NewGrid(8, 8, 8, 2*math.Pi, math.Pi)
	// kx = i, kz = 2*kz'.
	if got := g.K2(2, 1); math.Abs(got-(4+4)) > 1e-12 {
		t.Errorf("K2(2,1)=%g want 8", got)
	}
	if got := g.K2(0, 7); math.Abs(got-4) > 1e-12 { // kz' = -1 -> (2)^2
		t.Errorf("K2(0,7)=%g want 4", got)
	}
}

func TestNewGridValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGrid(7, 8, 8, 1, 1) }, // odd Nx
		func() { NewGrid(8, 8, 7, 1, 1) }, // odd Nz
		func() { NewGrid(2, 8, 8, 1, 1) }, // tiny Nx
		func() { NewGrid(8, 2, 8, 1, 1) }, // tiny Ny
		func() { NewGrid(8, 8, 8, 0, 1) }, // bad domain
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
