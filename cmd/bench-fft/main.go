// Command bench-fft regenerates Table 6: strong scaling of the parallel FFT
// cycle, customized kernel vs the P3DFFT-style baseline, on Mira, Lonestar
// and Stampede (machine model), optionally with live in-process runs of
// both kernels at laptop scale (-live).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"channeldns/internal/machine"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/parfft"
	"channeldns/internal/perf"
	"channeldns/internal/schedule"
	"channeldns/internal/telemetry"
)

func main() {
	live := flag.Bool("live", false, "also run live in-process FFT cycles")
	showSched := flag.Bool("schedule", false, "print the declarative op schedules of the live custom and baseline kernels")
	jsonPath := flag.String("json", "", "write a telemetry report of the live custom-kernel cycles to this file (implies -live)")
	flag.Parse()

	if *showSched {
		printSchedules()
		return
	}

	tbl := perf.Table{
		Title: "Table 6: parallel FFT strong scaling (elapsed seconds)",
		Headers: []string{"system", "cores", "P3DFFT model", "Custom model", "ratio",
			"P3DFFT paper", "Custom paper", "paper ratio"},
	}
	fmtNA := func(v float64) string {
		if v == 0 {
			return "N/A"
		}
		return fmt.Sprintf("%.3g", v)
	}
	for _, r := range machine.Table6() {
		tbl.AddRow(r.System, fmt.Sprint(r.Cores),
			fmtNA(r.ModelP3DFFT), fmtNA(r.ModelCustom), fmtNA(r.ModelRatio),
			fmtNA(r.PaperP3DFFT), fmtNA(r.PaperCustom), fmtNA(r.PaperRatio))
	}
	tbl.Write(os.Stdout)

	if *live || *jsonPath != "" {
		fmt.Printf("\nLive in-process cycles (GOMAXPROCS=%d), 64x32x64 grid, 3 fields:\n", runtime.GOMAXPROCS(0))
		lt := perf.Table{Headers: []string{"ranks", "custom", "baseline", "ratio"}}
		metrics := map[string]float64{}
		var lastReg *telemetry.Registry
		var lastElapsed time.Duration
		var lastRanks int
		var lastSched *schedule.Schedule
		for _, p := range [][2]int{{1, 1}, {2, 2}, {4, 2}} {
			c, reg, sched := liveCycle(p[0], p[1], true)
			b, _, _ := liveCycle(p[0], p[1], false)
			lt.AddRowf(p[0]*p[1], c.String(), b.String(), b.Seconds()/c.Seconds())
			ranks := p[0] * p[1]
			metrics[fmt.Sprintf("custom_seconds_%dranks", ranks)] = c.Seconds()
			metrics[fmt.Sprintf("baseline_seconds_%dranks", ranks)] = b.Seconds()
			lastReg, lastElapsed, lastRanks, lastSched = reg, c, ranks, sched
		}
		lt.Write(os.Stdout)

		if *jsonPath != "" {
			rep := telemetry.NewReport("table6", lastReg, map[string]string{
				"nx": "64", "ny": "32", "nz": "64", "fields": "3", "iters": "3",
				"kernel": "custom", "ranks": fmt.Sprint(lastRanks),
			})
			rep.WallSeconds = lastElapsed.Seconds()
			rep.Metrics = metrics
			rep.Schedule = lastSched
			if err := rep.WriteFile(*jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}
}

// liveCycle times iters cycles of one kernel; the custom kernel records
// through a telemetry registry (FFT stages plus transpose phases) that is
// returned for report assembly.
func liveCycle(pa, pb int, custom bool) (time.Duration, *telemetry.Registry, *schedule.Schedule) {
	var elapsed time.Duration
	var sched *schedule.Schedule
	reg := telemetry.NewRegistry()
	mpi.Run(pa*pb, func(c *mpi.Comm) {
		var k *parfft.Kernel
		if custom {
			k = parfft.NewCustom(c, pa, pb, 64, 32, 64, par.NewPool(2))
			k.SetTelemetry(reg.Rank(c.Rank()))
		} else {
			k = parfft.NewBaseline(c, pa, pb, 64, 32, 64)
		}
		if c.Rank() == 0 {
			sched = k.Schedule(3)
		}
		fields := make([][]complex128, 3)
		for f := range fields {
			fields[f] = make([]complex128, k.YPencilLen())
		}
		c.Barrier()
		t0 := time.Now()
		for it := 0; it < 3; it++ {
			fields, _ = k.Cycle(fields)
		}
		c.Barrier()
		if c.Rank() == 0 {
			elapsed = time.Since(t0)
		}
	})
	return elapsed, reg, sched
}

// printSchedules builds both kernels on the largest live split and prints
// their cycle schedules — the programs the -live table times.
func printSchedules() {
	for _, custom := range []bool{true, false} {
		custom := custom
		mpi.Run(8, func(c *mpi.Comm) {
			var k *parfft.Kernel
			if custom {
				k = parfft.NewCustom(c, 4, 2, 64, 32, 64, par.NewPool(1))
			} else {
				k = parfft.NewBaseline(c, 4, 2, 64, 32, 64)
			}
			if c.Rank() == 0 {
				k.Schedule(3).Write(os.Stdout)
				fmt.Println()
			}
		})
	}
}
