// Command bench-fft regenerates Table 6: strong scaling of the parallel FFT
// cycle, customized kernel vs the P3DFFT-style baseline, on Mira, Lonestar
// and Stampede (machine model), optionally with live in-process runs of
// both kernels at laptop scale (-live). -overlap additionally A/Bs the
// custom kernel's serial exchange against the pipelined transpose/FFT
// overlap and prints how much wire time the pipeline hid.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"channeldns/internal/machine"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/parfft"
	"channeldns/internal/perf"
	"channeldns/internal/schedule"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

func main() {
	live := flag.Bool("live", false, "also run live in-process FFT cycles")
	overlapAB := flag.Bool("overlap", false, "A/B the custom kernel's serial exchange against the pipelined transpose/FFT overlap (implies -live)")
	showSched := flag.Bool("schedule", false, "print the declarative op schedules of the live custom and baseline kernels")
	jsonPath := flag.String("json", "", "write a telemetry report of the live custom-kernel cycles to this file (implies -live; with -overlap a paired .overlap.json rides along)")
	flag.Parse()

	if *showSched {
		printSchedules()
		return
	}

	tbl := perf.Table{
		Title: "Table 6: parallel FFT strong scaling (elapsed seconds)",
		Headers: []string{"system", "cores", "P3DFFT model", "Custom model", "ratio",
			"P3DFFT paper", "Custom paper", "paper ratio"},
	}
	fmtNA := func(v float64) string {
		if v == 0 {
			return "N/A"
		}
		return fmt.Sprintf("%.3g", v)
	}
	for _, r := range machine.Table6() {
		tbl.AddRow(r.System, fmt.Sprint(r.Cores),
			fmtNA(r.ModelP3DFFT), fmtNA(r.ModelCustom), fmtNA(r.ModelRatio),
			fmtNA(r.PaperP3DFFT), fmtNA(r.PaperCustom), fmtNA(r.PaperRatio))
	}
	tbl.Write(os.Stdout)

	if *live || *overlapAB || *jsonPath != "" {
		fmt.Printf("\nLive in-process cycles (GOMAXPROCS=%d), 64x32x64 grid, 3 fields:\n", runtime.GOMAXPROCS(0))
		headers := []string{"ranks", "custom", "baseline", "ratio"}
		if *overlapAB {
			headers = []string{"ranks", "custom", "pipelined", "baseline", "ratio",
				"exposed [ms]", "hidden [ms]"}
		}
		lt := perf.Table{Headers: headers}
		metrics := map[string]float64{}
		var last, lastOv *liveResult
		for _, p := range [][2]int{{1, 1}, {2, 2}, {4, 2}} {
			ranks := p[0] * p[1]
			c := liveCycle(p[0], p[1], kindCustom, *overlapAB)
			b := liveCycle(p[0], p[1], kindBaseline, false)
			metrics[fmt.Sprintf("custom_seconds_%dranks", ranks)] = c.elapsed.Seconds()
			metrics[fmt.Sprintf("baseline_seconds_%dranks", ranks)] = b.elapsed.Seconds()
			if *overlapAB {
				o := liveCycle(p[0], p[1], kindOverlap, true)
				lt.AddRowf(ranks, c.elapsed.String(), o.elapsed.String(), b.elapsed.String(),
					b.elapsed.Seconds()/o.elapsed.Seconds(),
					fmt.Sprintf("%.3f", o.exposed*1e3), fmt.Sprintf("%.3f", o.hidden*1e3))
				metrics[fmt.Sprintf("overlap_seconds_%dranks", ranks)] = o.elapsed.Seconds()
				metrics[fmt.Sprintf("overlap_exposed_seconds_%dranks", ranks)] = o.exposed
				metrics[fmt.Sprintf("overlap_hidden_seconds_%dranks", ranks)] = o.hidden
				lastOv = o
			} else {
				lt.AddRowf(ranks, c.elapsed.String(), b.elapsed.String(),
					b.elapsed.Seconds()/c.elapsed.Seconds())
			}
			last = c
			last.ranks = ranks
		}
		lt.Write(os.Stdout)
		if *overlapAB {
			fmt.Println("pipelined: custom kernel with the chunked per-peer-progress " +
				"exchange; exposed/hidden: wire time its cycles waited on vs " +
				"overlapped with per-line FFT work (trace analyzer, summed across " +
				"ranks and iterations).")
		}

		if *jsonPath != "" {
			rep := telemetry.NewReport("table6", last.reg, map[string]string{
				"nx": "64", "ny": "32", "nz": "64", "fields": "3", "iters": "3",
				"kernel": "custom", "ranks": fmt.Sprint(last.ranks),
			})
			rep.WallSeconds = last.elapsed.Seconds()
			rep.Metrics = metrics
			rep.Schedule = last.sched
			if err := rep.WriteFile(*jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
			if lastOv != nil {
				ovPath := strings.TrimSuffix(*jsonPath, ".json") + ".overlap.json"
				ovRep := telemetry.NewReport("table6-overlap", lastOv.reg, map[string]string{
					"nx": "64", "ny": "32", "nz": "64", "fields": "3", "iters": "3",
					"kernel": "custom", "ranks": fmt.Sprint(last.ranks),
					"overlap": "true",
				})
				ovRep.WallSeconds = lastOv.elapsed.Seconds()
				ovRep.Schedule = lastOv.sched
				ovRep.Trace = lastOv.traceSum
				if err := ovRep.WriteFile(ovPath); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", ovPath)
			}
		}
	}
}

// Kernel variants the live sweep times.
const (
	kindBaseline = iota // P3DFFT-style: Nyquist kept, 3x buffers, serial
	kindCustom          // customized kernel, serial (one-shot) exchanges
	kindOverlap         // customized kernel, pipelined transpose/FFT overlap
)

// liveResult is one timed kernel variant at one split.
type liveResult struct {
	elapsed         time.Duration
	ranks           int
	exposed, hidden float64
	reg             *telemetry.Registry
	sched           *schedule.Schedule
	traceSum        *telemetry.TraceSummary
}

// liveCycle times iters cycles of one kernel variant; the custom variants
// record through a telemetry registry (FFT stages plus transpose phases)
// returned for report assembly. With traced, a flight recorder rides along
// (on both sides of the -overlap A/B, so the timings stay comparable) and
// the trace analyzer attributes exposed vs hidden wire time.
func liveCycle(pa, pb, kind int, traced bool) *liveResult {
	res := &liveResult{reg: telemetry.NewRegistry()}
	var trc *trace.Trace
	if traced {
		trc = trace.New(0)
	}
	mpi.Run(pa*pb, func(c *mpi.Comm) {
		var k *parfft.Kernel
		if kind == kindBaseline {
			k = parfft.NewBaseline(c, pa, pb, 64, 32, 64)
		} else {
			k = parfft.NewCustom(c, pa, pb, 64, 32, 64, par.NewPool(2))
			k.D.Overlap = kind == kindOverlap
			tel := res.reg.Rank(c.Rank())
			k.SetTelemetry(tel)
			if trc != nil {
				rec := trc.Rank(c.Rank())
				k.SetTrace(rec)
				tel.SetTracer(rec)
			}
		}
		if c.Rank() == 0 {
			res.sched = k.Schedule(3)
		}
		fields := make([][]complex128, 3)
		for f := range fields {
			fields[f] = make([]complex128, k.YPencilLen())
		}
		fields, _ = k.Cycle(fields) // warm plans, buffers and streams
		c.Barrier()
		t0 := time.Now()
		for it := 0; it < 3; it++ {
			fields, _ = k.Cycle(fields)
		}
		c.Barrier()
		if c.Rank() == 0 {
			res.elapsed = time.Since(t0)
		}
	})
	if trc != nil {
		res.traceSum = trace.Summarize(trc)
		if res.traceSum != nil {
			for _, s := range res.traceSum.Steps {
				res.exposed += s.ExposedWireSeconds
				res.hidden += s.HiddenWireSeconds
			}
		}
	}
	return res
}

// printSchedules builds both kernels on the largest live split and prints
// their cycle schedules — the programs the -live table times.
func printSchedules() {
	for _, custom := range []bool{true, false} {
		custom := custom
		mpi.Run(8, func(c *mpi.Comm) {
			var k *parfft.Kernel
			if custom {
				k = parfft.NewCustom(c, 4, 2, 64, 32, 64, par.NewPool(1))
			} else {
				k = parfft.NewBaseline(c, 4, 2, 64, 32, 64)
			}
			if c.Rank() == 0 {
				k.Schedule(3).Write(os.Stdout)
				fmt.Println()
			}
		})
	}
}
