// Command bench-fft regenerates Table 6: strong scaling of the parallel FFT
// cycle, customized kernel vs the P3DFFT-style baseline, on Mira, Lonestar
// and Stampede (machine model), optionally with live in-process runs of
// both kernels at laptop scale (-live).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"channeldns/internal/machine"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/parfft"
	"channeldns/internal/perf"
)

func main() {
	live := flag.Bool("live", false, "also run live in-process FFT cycles")
	flag.Parse()

	tbl := perf.Table{
		Title: "Table 6: parallel FFT strong scaling (elapsed seconds)",
		Headers: []string{"system", "cores", "P3DFFT model", "Custom model", "ratio",
			"P3DFFT paper", "Custom paper", "paper ratio"},
	}
	fmtNA := func(v float64) string {
		if v == 0 {
			return "N/A"
		}
		return fmt.Sprintf("%.3g", v)
	}
	for _, r := range machine.Table6() {
		tbl.AddRow(r.System, fmt.Sprint(r.Cores),
			fmtNA(r.ModelP3DFFT), fmtNA(r.ModelCustom), fmtNA(r.ModelRatio),
			fmtNA(r.PaperP3DFFT), fmtNA(r.PaperCustom), fmtNA(r.PaperRatio))
	}
	tbl.Write(os.Stdout)

	if *live {
		fmt.Printf("\nLive in-process cycles (GOMAXPROCS=%d), 64x32x64 grid, 3 fields:\n", runtime.GOMAXPROCS(0))
		lt := perf.Table{Headers: []string{"ranks", "custom", "baseline", "ratio"}}
		for _, p := range [][2]int{{1, 1}, {2, 2}, {4, 2}} {
			c := liveCycle(p[0], p[1], true)
			b := liveCycle(p[0], p[1], false)
			lt.AddRowf(p[0]*p[1], c.String(), b.String(), b.Seconds()/c.Seconds())
		}
		lt.Write(os.Stdout)
	}
}

func liveCycle(pa, pb int, custom bool) time.Duration {
	var elapsed time.Duration
	mpi.Run(pa*pb, func(c *mpi.Comm) {
		var k *parfft.Kernel
		if custom {
			k = parfft.NewCustom(c, pa, pb, 64, 32, 64, par.NewPool(2))
		} else {
			k = parfft.NewBaseline(c, pa, pb, 64, 32, 64)
		}
		fields := make([][]complex128, 3)
		for f := range fields {
			fields[f] = make([]complex128, k.YPencilLen())
		}
		c.Barrier()
		t0 := time.Now()
		for it := 0; it < 3; it++ {
			fields, _ = k.Cycle(fields)
		}
		c.Barrier()
		if c.Rank() == 0 {
			elapsed = time.Since(t0)
		}
	})
	return elapsed
}
