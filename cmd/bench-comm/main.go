// Command bench-comm regenerates Table 5 (global transpose performance as a
// function of the CommA x CommB split) and Figure 4 (the communication
// pattern of the two sub-communicators).
//
// The Table 5 scales (8192 Mira cores, 384 Lonestar cores) come from the
// machine model; -live additionally measures real in-process transpose
// cycles over the message-passing runtime at laptop scale, sweeping the
// same split dimension. The live sweep records through the telemetry
// subsystem — the same phase timers and per-direction comm counters the DNS
// timestep feeds — and -json writes the aggregated telemetry.Report.
// -overlap A/Bs every split against the pipelined (chunked, per-peer
// progress) exchange, printing how much of the wire time the pipeline hid.
// -transport selects the message-passing transport for the live cycles:
// chan (in-process mailboxes, the default), tcp (loopback sockets with the
// full serialize/frame path), or both — an A/B that times every split on
// each transport and, with -json, emits the paired chan/tcp BENCH reports
// that make the wire cost of the transpose cycle a gated number.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"channeldns/internal/machine"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/pencil"
	"channeldns/internal/perf"
	"channeldns/internal/schedule"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

func main() {
	pattern := flag.Bool("pattern", false, "print the Figure 4 communicator pattern (128 ranks)")
	showSched := flag.Bool("schedule", false, "print the declarative op schedule of the live transpose cycle (balanced 4x4 split)")
	live := flag.Bool("live", false, "also run live in-process transpose cycles")
	overlapAB := flag.Bool("overlap", false, "A/B the serial exchange against the pipelined overlap for every live split (implies -live)")
	jsonPath := flag.String("json", "", "write a telemetry report of the live sweep to this file (implies -live; with -overlap a paired .overlap.json rides along, with -transport=both a paired .tcp.json)")
	transportF := flag.String("transport", "chan", "live-cycle transport: chan, tcp, or both (A/B, implies -live)")
	flag.Parse()

	if *pattern {
		printPattern()
		return
	}
	if *showSched {
		printSchedule()
		return
	}

	runners := map[string]func(int, func(*mpi.Comm)){"chan": mpi.Run, "tcp": mpi.RunTCP}
	if _, ok := runners[*transportF]; !ok && *transportF != "both" {
		fmt.Fprintf(os.Stderr, "bench-comm: unknown -transport %q (want chan, tcp, or both)\n", *transportF)
		os.Exit(2)
	}
	if *transportF == "both" && *overlapAB {
		fmt.Fprintln(os.Stderr, "bench-comm: -overlap and -transport=both are separate A/Bs; run one at a time")
		os.Exit(2)
	}

	tbl := perf.Table{
		Title:   "Table 5: global transpose cycle time vs CommA x CommB split",
		Headers: []string{"system", "CommA", "CommB", "model (s)", "paper (s)"},
	}
	for _, r := range machine.Table5() {
		tbl.AddRowf(r.System, r.PA, r.PB, r.Model, r.Paper)
	}
	tbl.Write(os.Stdout)

	if *live || *overlapAB || *jsonPath != "" || *transportF != "chan" {
		if *transportF == "both" {
			transportAB(runners, *jsonPath)
			return
		}
		runner := runners[*transportF]
		fmt.Printf("\nLive transpose cycle, %s transport (16 ranks, 64x32x32 modes, 3 fields):\n", *transportF)
		headers := []string{"CommA", "CommB", "elapsed", "MB moved/dir", "steady allocs"}
		if *overlapAB {
			headers = []string{"CommA", "CommB", "serial", "pipelined", "ratio",
				"exposed [ms]", "hidden [ms]", "steady allocs"}
		}
		lt := perf.Table{Headers: headers}
		metrics := map[string]float64{}
		var balanced, balancedOv *liveResult
		for _, split := range [][2]int{{16, 1}, {8, 2}, {4, 4}, {2, 8}, {1, 16}} {
			r := liveCycle(runner, split[0], split[1], false, *overlapAB)
			metrics[fmt.Sprintf("cycle_seconds_%dx%d", split[0], split[1])] = r.elapsed.Seconds()
			if *overlapAB {
				o := liveCycle(runner, split[0], split[1], true, true)
				lt.AddRowf(split[0], split[1], r.elapsed.String(), o.elapsed.String(),
					r.elapsed.Seconds()/o.elapsed.Seconds(),
					fmt.Sprintf("%.3f", o.exposed*1e3), fmt.Sprintf("%.3f", o.hidden*1e3),
					o.allocs)
				metrics[fmt.Sprintf("overlap_cycle_seconds_%dx%d", split[0], split[1])] = o.elapsed.Seconds()
				metrics[fmt.Sprintf("overlap_exposed_seconds_%dx%d", split[0], split[1])] = o.exposed
				metrics[fmt.Sprintf("overlap_hidden_seconds_%dx%d", split[0], split[1])] = o.hidden
				if split[0] == 4 && split[1] == 4 {
					balancedOv = o
				}
			} else {
				lt.AddRowf(split[0], split[1], r.elapsed.String(),
					fmt.Sprintf("%.2f", float64(r.bytesPerDir)/(1<<20)), r.allocs)
			}
			if split[0] == 4 && split[1] == 4 {
				balanced = r
			}
		}
		lt.Write(os.Stdout)
		if *overlapAB {
			fmt.Println("exposed/hidden: wire time the pipelined cycles waited on vs " +
				"overlapped with pack/unpack (trace analyzer, summed across ranks " +
				"and iterations); ratio > 1 means the pipeline won.")
		} else {
			fmt.Println("MB moved/dir: rank-0 bytes through each transpose direction " +
				"(pack+unpack); steady allocs: heap objects allocated process-wide " +
				"during the timed cycles (message copies only — plan tables and " +
				"exchange buffers are reused).")
		}

		if *jsonPath != "" {
			rep := telemetry.NewReport("table5", balanced.reg, sweepConfig(*transportF, nil))
			// Phase/comm tables describe the balanced 4x4 split; the other
			// splits' cycle times ride along as metrics.
			rep.WallSeconds = balanced.elapsed.Seconds()
			rep.Metrics = metrics
			rep.Schedule = balanced.sched
			if err := rep.WriteFile(*jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
			if balancedOv != nil {
				ovPath := strings.TrimSuffix(*jsonPath, ".json") + ".overlap.json"
				ovRep := telemetry.NewReport("table5-overlap", balancedOv.reg,
					sweepConfig(*transportF, map[string]string{"overlap": "true"}))
				ovRep.WallSeconds = balancedOv.elapsed.Seconds()
				ovRep.Schedule = balancedOv.sched
				ovRep.Trace = balancedOv.traceSum
				if err := ovRep.WriteFile(ovPath); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", ovPath)
			}
		}
	}
}

// sweepConfig is the live sweep's report config, stamped with the
// transport so paired chan/tcp reports stay distinguishable downstream.
func sweepConfig(transport string, extra map[string]string) map[string]string {
	cfg := map[string]string{
		"nkx": "32", "nz": "32", "ny": "32",
		"fields": "3", "iters": "4", "splits": "16x1,8x2,4x4,2x8,1x16",
		"transport": transport,
	}
	for k, v := range extra {
		cfg[k] = v
	}
	return cfg
}

// transportAB runs every live split on both transports and prints the
// wire cost of the cycle: tcp elapsed over chan elapsed, everything else
// identical. With a -json path it writes the paired BENCH reports — the
// chan sweep at the path itself and the tcp sweep at a .tcp.json sibling
// — so CI can gate on the pair.
func transportAB(runners map[string]func(int, func(*mpi.Comm)), jsonPath string) {
	fmt.Println("\nLive transpose cycle, chan vs tcp transport (16 ranks, 64x32x32 modes, 3 fields):")
	lt := perf.Table{Headers: []string{"CommA", "CommB", "chan", "tcp", "wire cost", "tcp MB/dir"}}
	metrics := map[string]map[string]float64{"chan": {}, "tcp": {}}
	balanced := map[string]*liveResult{}
	for _, split := range [][2]int{{16, 1}, {8, 2}, {4, 4}, {2, 8}, {1, 16}} {
		res := map[string]*liveResult{}
		for _, tr := range []string{"chan", "tcp"} {
			r := liveCycle(runners[tr], split[0], split[1], false, false)
			res[tr] = r
			metrics[tr][fmt.Sprintf("cycle_seconds_%dx%d", split[0], split[1])] = r.elapsed.Seconds()
			if split[0] == 4 && split[1] == 4 {
				balanced[tr] = r
			}
		}
		lt.AddRowf(split[0], split[1],
			res["chan"].elapsed.String(), res["tcp"].elapsed.String(),
			fmt.Sprintf("%.2fx", res["tcp"].elapsed.Seconds()/res["chan"].elapsed.Seconds()),
			fmt.Sprintf("%.2f", float64(res["tcp"].bytesPerDir)/(1<<20)))
	}
	lt.Write(os.Stdout)
	fmt.Println("wire cost: tcp elapsed / chan elapsed for the same split — the " +
		"price of serializing every transpose message through loopback sockets.")
	if jsonPath == "" {
		return
	}
	paths := map[string]string{
		"chan": jsonPath,
		"tcp":  strings.TrimSuffix(jsonPath, ".json") + ".tcp.json",
	}
	for _, tr := range []string{"chan", "tcp"} {
		rep := telemetry.NewReport("table5", balanced[tr].reg, sweepConfig(tr, nil))
		rep.WallSeconds = balanced[tr].elapsed.Seconds()
		rep.Metrics = metrics[tr]
		rep.Schedule = balanced[tr].sched
		if err := rep.WriteFile(paths[tr]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", paths[tr])
	}
}

// liveResult is one timed split of the live sweep.
type liveResult struct {
	elapsed         time.Duration
	bytesPerDir     int64  // rank-0 bytes moved per direction (all four agree)
	allocs          uint64 // process-wide heap objects during the timed loop
	exposed, hidden float64
	reg             *telemetry.Registry
	sched           *schedule.Schedule // the cycle as this split executed it
	traceSum        *telemetry.TraceSummary
}

// liveCycle times 4 transpose cycles on a pa x pb split under the given
// runner (mpi.Run for the channel transport, mpi.RunTCP for loopback
// sockets). With overlap the four legs run through the pipelined chunked
// exchange (nil consume: this benchmark isolates the transposes, so
// there is no FFT stage to hide under — the pipeline still overlaps wire
// time with pack/unpack). With traced, a flight recorder rides along so
// the analyzer can attribute exposed vs hidden wire time; tracing is on
// for both sides of the -overlap A/B so the timings stay comparable.
func liveCycle(runner func(int, func(*mpi.Comm)), pa, pb int, overlap, traced bool) *liveResult {
	res := &liveResult{reg: telemetry.NewRegistry()}
	var trc *trace.Trace
	if traced {
		trc = trace.New(0)
	}
	runner(pa*pb, func(c *mpi.Comm) {
		d := pencil.New(c, pa, pb, 32, 32, 32, par.NewPool(1))
		d.Overlap = overlap
		tel := res.reg.Rank(c.Rank())
		d.Telemetry = tel
		var rec *trace.Recorder
		if trc != nil {
			rec = trc.Rank(c.Rank())
			d.Trace = rec
			tel.SetTracer(rec)
		}
		fields := make([][]complex128, 3)
		for f := range fields {
			fields[f] = make([]complex128, d.YPencilLen())
		}
		// Preallocated destinations: the steady-state cycle reuses these
		// and the Decomp's transpose plans, so the loop below allocates
		// nothing beyond the runtime's per-message copies (and nothing at
		// all on the pipelined path, which sends from preallocated wire
		// arenas).
		zp := pencil.AllocFields(3, d.ZPencilLen(d.NZ))
		xp := pencil.AllocFields(3, d.XPencilLen(d.NZ))
		zp2 := pencil.AllocFields(3, d.ZPencilLen(d.NZ))
		out := pencil.AllocFields(3, d.YPencilLen())
		cycle := func() {
			if overlap {
				d.YtoZPipelined(zp, fields, nil)
				d.ZtoXPipelined(xp, zp, d.NZ, nil)
				d.XtoZPipelined(zp2, xp, d.NZ, nil)
				d.ZtoYPipelined(out, zp2, nil)
			} else {
				d.YtoZ(zp, fields)
				d.ZtoX(xp, zp, d.NZ)
				d.XtoZ(zp2, xp, d.NZ)
				d.ZtoY(out, zp2)
			}
		}
		cycle() // warm the plans
		c.Barrier()
		d.Telemetry.Reset() // drop warmup samples; each rank resets its own
		c.Barrier()
		before := perf.ReadAllocs()
		t0 := time.Now()
		for it := 0; it < 4; it++ {
			rec.BeginStep(int64(it))
			st0 := time.Now()
			cycle()
			rec.EndStep(st0, time.Now())
		}
		c.Barrier()
		if c.Rank() == 0 {
			res.elapsed = time.Since(t0)
			res.allocs = perf.ReadAllocs().Sub(before).Mallocs
			_, _, bytes := d.Telemetry.CommCounts(telemetry.CommYtoZ)
			res.bytesPerDir = bytes
			res.sched = d.CycleSchedule(3)
		}
	})
	if trc != nil {
		res.traceSum = trace.Summarize(trc)
		if res.traceSum != nil {
			for _, s := range res.traceSum.Steps {
				res.exposed += s.ExposedWireSeconds
				res.hidden += s.HiddenWireSeconds
			}
		}
	}
	return res
}

// printSchedule builds the balanced live decomposition and prints its cycle
// schedule — the program the -live sweep times and -json reports carry.
func printSchedule() {
	mpi.Run(16, func(c *mpi.Comm) {
		d := pencil.New(c, 4, 4, 32, 32, 32, par.NewPool(1))
		if c.Rank() == 0 {
			d.CycleSchedule(3).Write(os.Stdout)
		}
	})
}

// printPattern reproduces Figure 4: for a 128-task 8x16 cartesian grid, the
// CommA (row) and CommB (column) membership of every rank.
func printPattern() {
	fmt.Println("Figure 4: communication pattern of 128 MPI tasks (8x16 grid)")
	fmt.Println("Each cell shows worldRank; ranks sharing a row exchange in CommB(16),")
	fmt.Println("ranks sharing a column exchange in CommA(8).")
	mpi.Run(128, func(c *mpi.Comm) {
		cart := c.CartCreate([]int{8, 16})
		commA := cart.CartSub([]bool{true, false})
		commB := cart.CartSub([]bool{false, true})
		// Rank 0 gathers (worldRank, coordsA, coordsB) and prints the grid.
		info := []int{c.Rank(), cart.Coords()[0], cart.Coords()[1], commA.Rank(), commB.Rank()}
		all := mpi.Gather(c, 0, info)
		if c.Rank() != 0 {
			return
		}
		grid := make([][]int, 8)
		for i := range grid {
			grid[i] = make([]int, 16)
		}
		for i := 0; i < 128; i++ {
			rec := all[i*5 : i*5+5]
			grid[rec[1]][rec[2]] = rec[0]
		}
		for r := 0; r < 8; r++ {
			fmt.Printf("CommB group %2d (black): ", r)
			for q := 0; q < 16; q++ {
				fmt.Printf("%4d", grid[r][q])
			}
			fmt.Println()
		}
		fmt.Println("CommA groups (red) are the 16 columns above, e.g. column 0:")
		for r := 0; r < 8; r++ {
			fmt.Printf("%4d", grid[r][0])
		}
		fmt.Println()
	})
}
