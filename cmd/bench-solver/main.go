// Command bench-solver regenerates Table 1 of the paper: elapsed time for
// solving the bordered-banded collocation systems with the customized
// compact solver versus general banded solvers, normalized by the reference
// (Netlib-style) complex banded routine.
//
// Columns measured live on this machine:
//
//	GB^R    real banded LU + two sequential real solves   (paper "MKL^R")
//	GB^C    complex banded LU                              (paper "MKL^C")
//	Custom  compact bordered-band solver, real x complex   (paper "Custom")
//
// all normalized by the Naive reference solver (paper "Netlib LAPACK").
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"channeldns/internal/banded"
	"channeldns/internal/machine"
	"channeldns/internal/perf"
	"channeldns/internal/telemetry"
)

func main() {
	n := flag.Int("n", 1024, "system size")
	reps := flag.Int("reps", 5, "repetitions (minimum time kept)")
	jsonPath := flag.String("json", "", "write a telemetry report of the measured ratios to this file")
	flag.Parse()

	tbl := perf.Table{
		Title:   fmt.Sprintf("Table 1: banded solver comparison, N=%d (normalized by reference complex banded solver)", *n),
		Headers: []string{"bw", "GB^R", "GB^C", "Custom", "paper MKL^R", "paper MKL^C", "paper Custom"},
	}
	metrics := map[string]float64{}
	for _, row := range machine.Table1Paper {
		h := (row.Bandwidth - 1) / 2
		tR := timeIt(*reps, func() time.Duration { return solveRealTwo(*n, h) })
		tC := timeIt(*reps, func() time.Duration { return solveComplex(*n, h) })
		tK := timeIt(*reps, func() time.Duration { return solveCompact(*n, h) })
		tN := timeIt(*reps, func() time.Duration { return solveNaive(*n, h) })
		norm := tN.Seconds()
		tbl.AddRowf(row.Bandwidth,
			tR.Seconds()/norm, tC.Seconds()/norm, tK.Seconds()/norm,
			row.LonestarR, row.LonestarC, row.LonestarCustom)
		metrics[fmt.Sprintf("gbr_over_naive_bw%d", row.Bandwidth)] = tR.Seconds() / norm
		metrics[fmt.Sprintf("gbc_over_naive_bw%d", row.Bandwidth)] = tC.Seconds() / norm
		metrics[fmt.Sprintf("custom_over_naive_bw%d", row.Bandwidth)] = tK.Seconds() / norm
		metrics[fmt.Sprintf("naive_seconds_bw%d", row.Bandwidth)] = norm
	}
	if err := tbl.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nPaper reference columns are Lonestar values; see EXPERIMENTS.md for the shape criteria.")

	if *jsonPath != "" {
		// No phase timers fire here — the solver kernels are timed whole —
		// so the report carries the normalized ratios as metrics.
		rep := telemetry.NewReport("table1", telemetry.NewRegistry(), map[string]string{
			"n": fmt.Sprint(*n), "reps": fmt.Sprint(*reps),
		})
		rep.Metrics = metrics
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

func timeIt(reps int, f func() time.Duration) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		if d := f(); d < best {
			best = d
		}
	}
	return best
}

func fillSystem(n, h int, set func(i, j int, v float64)) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		for j := max(0, i-h); j <= min(n-1, i+h); j++ {
			v := rng.NormFloat64()
			if i == j {
				v += float64(4*h + 8)
			}
			set(i, j, v)
		}
	}
}

func rhsComplex(n int) []complex128 {
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(float64(i%17)-8, float64(i%11)-5)
	}
	return b
}

func solveRealTwo(n, h int) time.Duration {
	m := banded.NewReal(n, h, h)
	fillSystem(n, h, m.Set)
	b := rhsComplex(n)
	t0 := time.Now()
	if err := m.Factor(); err != nil {
		panic(err)
	}
	m.SolveComplexTwoReal(b)
	return time.Since(t0)
}

func solveComplex(n, h int) time.Duration {
	m := banded.NewComplex(n, h, h)
	fillSystem(n, h, func(i, j int, v float64) { m.Set(i, j, complex(v, 0)) })
	b := rhsComplex(n)
	t0 := time.Now()
	if err := m.Factor(); err != nil {
		panic(err)
	}
	m.Solve(b)
	return time.Since(t0)
}

func solveCompact(n, h int) time.Duration {
	m := banded.NewCompact(n, h)
	fillSystem(n, h, m.Set)
	b := rhsComplex(n)
	t0 := time.Now()
	if err := m.Factor(); err != nil {
		panic(err)
	}
	m.SolveComplex(b)
	return time.Since(t0)
}

func solveNaive(n, h int) time.Duration {
	m := banded.NewNaive(n, h, h)
	fillSystem(n, h, func(i, j int, v float64) { m.Set(i, j, complex(v, 0)) })
	b := rhsComplex(n)
	t0 := time.Now()
	if err := m.Factor(); err != nil {
		panic(err)
	}
	m.Solve(b)
	return time.Since(t0)
}
