// Command ckpt inspects and drills checkpoint stores written by the dns
// command (internal/ckpt format):
//
//	ckpt ls -dir DIR              list checkpoints with their status
//	ckpt ls -runs DIR             list a dnsserve run store: every run with
//	                              its state, workload and latest checkpoint
//	ckpt verify -dir DIR [NAME]   fully verify one or all checkpoints
//	ckpt corrupt -dir DIR [NAME]  flip a bit in a shard (recovery drill)
//
// corrupt damages the newest published checkpoint by default and leaves
// the manifest intact — exactly the silent-corruption scenario the store's
// fallback recovery is built for. It is used by the `make smoke` crash-
// restart drill and is safe to point at a scratch store; do not point it
// at the only copy of data you care about.
package main

import (
	"flag"
	"fmt"
	"os"

	"channeldns/internal/ckpt"
	"channeldns/internal/server"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ckpt {ls|verify|corrupt} {-dir DIR | -runs DIR} [options] [NAME]\n")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet("ckpt "+cmd, flag.ExitOnError)
	dir := fs.String("dir", "", "checkpoint store directory")
	runs := fs.String("runs", "", "ls: treat DIR as a dnsserve run-store root and list every run")
	shard := fs.Int("shard", 0, "corrupt: shard index to damage")
	trunc := fs.Int64("truncate", -1, "corrupt: truncate the shard to this many bytes instead of flipping a bit")
	fs.Parse(os.Args[2:])
	if *runs != "" && cmd == "ls" {
		if err := lsRuns(*runs); err != nil {
			fmt.Fprintf(os.Stderr, "ckpt ls: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *dir == "" {
		usage()
	}
	store := ckpt.NewStore(*dir)

	var err error
	switch cmd {
	case "ls":
		err = ls(store)
	case "verify":
		err = verify(store, fs.Arg(0))
	case "corrupt":
		err = corrupt(store, fs.Arg(0), *shard, *trunc)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckpt %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func ls(store *ckpt.Store) error {
	names, err := store.Checkpoints()
	if err != nil {
		return err
	}
	if len(names) == 0 {
		fmt.Println("no checkpoints")
		return nil
	}
	for _, name := range names {
		m, err := store.Verify(name)
		if err != nil {
			fmt.Printf("%s  INVALID: %v\n", name, err)
			continue
		}
		var bytes int64
		for _, sh := range m.Shards {
			bytes += sh.Bytes
		}
		fmt.Printf("%s  ok  step=%d t=%.6g dt=%.6g ranks=%d bytes=%d fingerprint=%s\n",
			name, m.Step, m.Time, m.Dt, m.Ranks, bytes, m.Fingerprint)
	}
	return nil
}

// lsRuns lists a dnsserve run store through the same discovery code the
// server's restart recovery uses: one line per run with its persisted
// state, workload, position, and latest published checkpoint.
func lsRuns(root string) error {
	runs, err := server.DiscoverRuns(root)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		fmt.Println("no runs")
		return nil
	}
	for _, ri := range runs {
		ckptCol := "-"
		if ri.Manifest != nil {
			ckptCol = fmt.Sprintf("%s step=%d", ri.CkptName, ri.Manifest.Step)
		}
		resume := ""
		if ri.Resumable() && ri.Status.State != server.StatePaused {
			resume = "  (resumes on next server start)"
		}
		fmt.Printf("%s  %-11s  %-9s  step=%-6d  ckpt=%s%s\n",
			server.RunID(ri.ID), ri.Status.State, ri.Spec.Workload,
			ri.Status.Step, ckptCol, resume)
	}
	return nil
}

func verify(store *ckpt.Store, name string) error {
	names := []string{name}
	if name == "" {
		var err error
		if names, err = store.Checkpoints(); err != nil {
			return err
		}
	}
	bad := 0
	for _, n := range names {
		if _, err := store.Verify(n); err != nil {
			fmt.Printf("%s  INVALID: %v\n", n, err)
			bad++
		} else {
			fmt.Printf("%s  ok\n", n)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d checkpoints invalid", bad, len(names))
	}
	return nil
}

func corrupt(store *ckpt.Store, name string, shard int, trunc int64) error {
	if name == "" {
		latest, _, err := store.Latest()
		if err != nil {
			return err
		}
		name = latest
	}
	if err := store.CorruptShard(name, shard, trunc); err != nil {
		return err
	}
	fmt.Printf("corrupted %s shard %d (manifest left intact)\n", name, shard)
	return nil
}
