// Command visualize regenerates the qualitative flow visualizations of the
// paper (Figures 7 and 8): an instantaneous streamwise-velocity plane and
// the spanwise vorticity near the wall, rendered as PGM images from a short
// turbulent channel run.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
)

func main() {
	var (
		nx    = flag.Int("nx", 48, "Fourier modes in x")
		ny    = flag.Int("ny", 65, "B-spline basis size")
		nz    = flag.Int("nz", 48, "Fourier modes in z")
		retau = flag.Float64("retau", 180, "friction Reynolds number")
		steps = flag.Int("steps", 400, "spin-up steps before rendering")
		dt    = flag.Float64("dt", 4e-4, "time step")
		outU  = flag.String("u", "figure7_u.pgm", "output for the u plane (Figure 7)")
		outW  = flag.String("omegaz", "figure8_omegaz.pgm", "output for the omega_z plane (Figure 8)")
	)
	flag.Parse()

	cfg := core.Config{Nx: *nx, Ny: *ny, Nz: *nz, ReTau: *retau, Dt: *dt,
		Forcing: 1, Pool: par.NewPool(0)}
	var err error
	mpi.Run(1, func(c *mpi.Comm) {
		var s *core.Solver
		s, err = core.New(c, cfg)
		if err != nil {
			return
		}
		s.SetLaminar()
		s.Perturb(0.3, 3, 3, 7)
		fmt.Printf("spinning up %d steps...\n", *steps)
		s.AdvanceAdaptive(*steps, 0.8, 5)
		fmt.Printf("t = %.3f, E = %.4f, u_tau = %.3f\n", s.Time, s.TotalEnergy(), s.FrictionVelocity())

		// Figure 7: streamwise velocity on a mid-height plane.
		mid := *ny / 2
		if err = writePGM(*outU, s.PhysicalPlane(core.CompU, mid)); err != nil {
			return
		}
		fmt.Printf("wrote %s (u at y = %.3f)\n", *outU, s.CollocationPoints()[mid])

		// Figure 8: spanwise vorticity near the wall (first interior point
		// cluster, about y+ ~ 10 for this resolution).
		near := nearWallIndex(s.CollocationPoints(), *retau)
		if err = writePGM(*outW, s.PhysicalPlane(core.CompOmegaZ, near)); err != nil {
			return
		}
		fmt.Printf("wrote %s (omega_z at y = %.3f)\n", *outW, s.CollocationPoints()[near])
	})
	if err != nil {
		log.Fatal(err)
	}
}

// nearWallIndex picks the collocation point closest to y+ = 10.
func nearWallIndex(pts []float64, retau float64) int {
	target := -1 + 10/retau
	best, bi := math.Inf(1), 1
	for i, y := range pts {
		if d := math.Abs(y - target); d < best {
			best, bi = d, i
		}
	}
	return bi
}

// writePGM renders a plane as an 8-bit grayscale PGM, normalized to the
// plane's range.
func writePGM(path string, plane [][]float64) error {
	h := len(plane)
	if h == 0 {
		return fmt.Errorf("empty plane")
	}
	w := len(plane[0])
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range plane {
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", w, h); err != nil {
		return err
	}
	buf := make([]byte, w)
	for _, row := range plane {
		for i, v := range row {
			buf[i] = byte(255 * (v - lo) / (hi - lo))
		}
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
