// Command trace-merge joins the per-rank Chrome trace files of a
// distributed run (cmd/dns -transport=tcp writes one per rank) into a
// single Perfetto timeline on rank 0's clock: one track per rank, events
// shifted by each file's stamped clock offset, and flow arrows linking
// the matched transpose exchange windows across ranks. The merged file
// passes bench-validate -trace (track monotonicity, flow referential
// integrity) and, with -summary, the whole-world critical-path table is
// printed — which rank gated each step, seen across the entire world
// rather than one process.
//
//	trace-merge -o merged.json run.trace.json run.trace.json.rank1 ...
//
// Clock caveat: offsets are RTT-estimated with error bound RTT/2 per
// rank; cross-rank orderings tighter than the printed bounds are noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"channeldns/internal/trace"
)

func main() {
	out := flag.String("o", "merged.trace.json", "output path for the merged trace")
	summary := flag.Bool("summary", false, "print the whole-world critical-path straggler table")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: trace-merge [-o merged.json] [-summary] rank-trace.json ...")
		os.Exit(2)
	}
	traces := make([]*trace.RankTrace, 0, flag.NArg())
	for _, path := range flag.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal("%s: %v", path, err)
		}
		rt, err := trace.ParseChrome(raw)
		if err != nil {
			fatal("%s: %v", path, err)
		}
		traces = append(traces, rt)
	}
	m, err := trace.Merge(traces)
	if err != nil {
		fatal("merge: %v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	if err := m.WriteChrome(f); err != nil {
		f.Close()
		fatal("%s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		fatal("%s: %v", *out, err)
	}
	// Self-check: the file this tool emits must pass the same validator
	// CI runs over it, including flow referential integrity.
	raw, err := os.ReadFile(*out)
	if err != nil {
		fatal("%s: %v", *out, err)
	}
	n, err := trace.ValidateChrome(raw)
	if err != nil {
		fatal("%s: self-validation failed: %v", *out, err)
	}
	events := 0
	for _, evs := range m.PerRank {
		events += len(evs)
	}
	fmt.Printf("merged %d ranks, %d events, %d flow arrows -> %s (%d trace events)\n",
		len(flag.Args()), events, m.FlowArrows, *out, n)
	for rank, errNs := range m.ErrorNs {
		if m.PerRank[rank] == nil {
			continue
		}
		fmt.Printf("  rank %d: clock error bound %v\n", rank, time.Duration(errNs))
	}
	if *summary {
		reports := m.Analyze()
		if len(reports) == 0 {
			fmt.Println("no complete steps to analyze")
			return
		}
		trace.WriteStragglerTable(os.Stdout, reports)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "trace-merge: "+format+"\n", args...)
	os.Exit(1)
}
