// Command dnsrun launches a distributed DNS: one OS process per rank over
// the TCP transport, wired together through a rank-0 rendezvous. It is
// the reproduction's mpirun.
//
//	dnsrun -n 4 -- -nx 32 -ny 49 -nz 32 -pa 2 -pb 2 -steps 200
//
// Everything after -- is passed to every dns process verbatim; dnsrun
// appends the per-rank -transport/-rank/-world/-coord flags itself. The
// dns binary is found with -bin, next to the dnsrun executable, or on
// PATH, in that order.
//
// Multi-machine runs take a host file (-hostfile): one host per line in
// rank order (blank lines and # comments skipped; fewer lines than ranks
// cycle round-robin). Ranks whose host is local run as child processes;
// remote ranks are spawned over ssh with the same binary path and
// arguments, binding their peer listener to 0.0.0.0 and advertising
// their host name. With a host file, -coord must name an address every
// host can reach (not a :0 ephemeral pick). Checkpoint directories must
// live on a filesystem shared by all hosts.
//
// Every child's output is forwarded line by line, prefixed with its rank.
// The first child to exit non-zero (or to die on a signal) kills the rest;
// dnsrun exits with that child's own code (128+signo for signal deaths)
// and its final stderr line names the failing rank.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

func main() {
	n := flag.Int("n", 0, "world size: number of rank processes to launch (required)")
	bin := flag.String("bin", "", "path to the dns binary (default: dns next to this executable, then PATH)")
	coord := flag.String("coord", "", "rendezvous address for rank 0 (default: a free localhost port; required explicitly with -hostfile)")
	hostfile := flag.String("hostfile", "", "file with one host per rank line for multi-machine runs (see command doc)")
	flag.Parse()
	passthrough := flag.Args()

	if *n <= 0 {
		fatalf("dnsrun: -n must be positive")
	}
	hosts, err := loadHosts(*hostfile, *n)
	if err != nil {
		fatalf("dnsrun: %v", err)
	}
	remote := false
	for _, h := range hosts {
		if !isLocalHost(h) {
			remote = true
		}
	}
	if *coord == "" {
		if remote {
			fatalf("dnsrun: -hostfile with remote hosts needs an explicit, reachable -coord")
		}
		addr, err := freeLocalPort()
		if err != nil {
			fatalf("dnsrun: picking a coordinator port: %v", err)
		}
		*coord = addr
	}
	dnsBin, err := findDNS(*bin)
	if err != nil {
		fatalf("dnsrun: %v", err)
	}

	procs := make([]*exec.Cmd, *n)
	var outWG sync.WaitGroup
	for r := 0; r < *n; r++ {
		args := append([]string(nil), passthrough...)
		args = append(args,
			"-transport=tcp",
			fmt.Sprintf("-rank=%d", r),
			fmt.Sprintf("-world=%d", *n),
			fmt.Sprintf("-coord=%s", *coord),
		)
		var cmd *exec.Cmd
		if isLocalHost(hosts[r]) {
			cmd = exec.Command(dnsBin, args...)
		} else {
			// Remote ranks must accept peer links from off-host and tell
			// peers which host to dial.
			args = append(args, "-bind=0.0.0.0:0", fmt.Sprintf("-advertise=%s", hosts[r]))
			sshArgs := append([]string{hosts[r], dnsBin}, args...)
			cmd = exec.Command("ssh", sshArgs...)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			fatalf("dnsrun: rank %d stdout: %v", r, err)
		}
		stderr, err := cmd.StderrPipe()
		if err != nil {
			fatalf("dnsrun: rank %d stderr: %v", r, err)
		}
		outWG.Add(2)
		go forward(&outWG, r, stdout, os.Stdout)
		go forward(&outWG, r, stderr, os.Stderr)
		if err := cmd.Start(); err != nil {
			killAll(procs)
			fatalf("dnsrun: starting rank %d: %v", r, err)
		}
		procs[r] = cmd
	}

	// Forward interrupts to the whole world so a ^C tears it down.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "dnsrun: %v, stopping all ranks\n", sig)
		killAll(procs)
	}()

	type exit struct {
		rank int
		err  error
	}
	exits := make(chan exit, *n)
	for r, cmd := range procs {
		go func() { exits <- exit{r, cmd.Wait()} }()
	}
	// The first rank to fail decides the run: its exit code becomes
	// dnsrun's (signal deaths map to the shell convention 128+signo), and
	// the final line names it, so a wrapping script learns which rank to
	// look at. Later failures are collateral from the kill and don't
	// override.
	status := 0
	failedRank := -1
	for i := 0; i < *n; i++ {
		e := <-exits
		if e.err != nil && status == 0 {
			status = exitCode(e.err)
			failedRank = e.rank
			fmt.Fprintf(os.Stderr, "dnsrun: rank %d failed: %v; stopping remaining ranks\n", e.rank, e.err)
			killAll(procs)
		}
	}
	outWG.Wait()
	if status != 0 {
		fmt.Fprintf(os.Stderr, "dnsrun: failed: rank %d exited with status %d\n", failedRank, status)
	}
	os.Exit(status)
}

// exitCode maps a child's Wait error to the status dnsrun propagates:
// the child's own exit code when it exited; 128+signal when a signal
// killed it (the shell convention, so SIGKILL reads as 137); 1 for
// errors that never produced a process status.
func exitCode(err error) int {
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		return 1
	}
	if code := ee.ExitCode(); code >= 0 {
		return code
	}
	if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
		return 128 + int(ws.Signal())
	}
	return 1
}

func fatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", a...)
	os.Exit(2)
}

// outMu serializes the forwarders' writes: one lock per complete line, so
// concurrent ranks' output interleaves only at line boundaries, never
// mid-line.
var outMu sync.Mutex

// forward copies one child stream line by line under a rank prefix. Each
// prefixed line is assembled in full and written under outMu in a single
// Write, so no rank's line can be split by another's. A Reader rather
// than a Scanner: Scanner silently stops at its buffer cap, dropping the
// rest of a stream whose line exceeds it.
func forward(wg *sync.WaitGroup, rank int, from io.Reader, to io.Writer) {
	defer wg.Done()
	br := bufio.NewReaderSize(from, 64*1024)
	for {
		line, err := br.ReadString('\n')
		if len(line) > 0 {
			line = strings.TrimSuffix(line, "\n")
			outMu.Lock()
			fmt.Fprintf(to, "[rank %d] %s\n", rank, line)
			outMu.Unlock()
		}
		if err != nil {
			return // io.EOF on child exit; anything else ends the stream too
		}
	}
}

func killAll(procs []*exec.Cmd) {
	for _, cmd := range procs {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}

// loadHosts reads the host file (one host per rank line, # comments and
// blanks skipped, round-robin when shorter than the world); with no host
// file every rank is local.
func loadHosts(path string, n int) ([]string, error) {
	hosts := make([]string, n)
	if path == "" {
		for i := range hosts {
			hosts[i] = "localhost"
		}
		return hosts, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("host file %s has no hosts", path)
	}
	for i := range hosts {
		hosts[i] = lines[i%len(lines)]
	}
	return hosts, nil
}

func isLocalHost(h string) bool {
	switch h {
	case "localhost", "127.0.0.1", "::1", "":
		return true
	}
	return false
}

// freeLocalPort binds an ephemeral loopback port, releases it, and
// returns its address for the rendezvous. The small bind race against
// another process is acceptable for a launcher.
func freeLocalPort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// findDNS resolves the dns binary: explicit -bin, a sibling of the
// dnsrun executable, then PATH.
func findDNS(bin string) (string, error) {
	if bin != "" {
		return bin, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "dns")
		if st, err := os.Stat(sibling); err == nil && !st.IsDir() {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("dns"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("no dns binary: pass -bin, place dns next to dnsrun, or add it to PATH")
}
