package main

import (
	"os/exec"
	"syscall"
	"testing"
	"time"
)

// TestExitCode: the launcher's status propagation — a failing child's own
// exit code passes through, signal deaths follow the 128+signo shell
// convention, and non-process errors collapse to 1.
func TestExitCode(t *testing.T) {
	run := func(name string, arg ...string) error {
		t.Helper()
		return exec.Command(name, arg...).Run()
	}

	if err := run("sh", "-c", "exit 7"); err == nil {
		t.Fatal("exit 7 did not error")
	} else if got := exitCode(err); got != 7 {
		t.Errorf("exit 7 propagated as %d", got)
	}
	if err := run("sh", "-c", "exit 0"); err != nil {
		t.Fatalf("clean exit errored: %v", err)
	}

	// A signal-killed child: start a sleeper, kill it, reap the status.
	cmd := exec.Command("sleep", "60")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the child a beat to exec before the signal lands.
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatal("killed child reported no error")
	}
	if got, want := exitCode(err), 128+int(syscall.SIGKILL); got != want {
		t.Errorf("SIGKILL death propagated as %d, want %d", got, want)
	}

	// Errors that never produced a process status (e.g. exec failures).
	if err := run("/nonexistent-binary-for-dnsrun-test"); err == nil {
		t.Fatal("missing binary did not error")
	} else if got := exitCode(err); got != 1 {
		t.Errorf("non-exit error propagated as %d, want 1", got)
	}
}
