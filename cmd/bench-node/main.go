// Command bench-node regenerates the single-core and single-node tables of
// the paper: Table 2 (single-core N-S advance characterization), Table 3
// (OpenMP speedup of the FFT and time-advance kernels) and Table 4 (on-node
// data reordering scaling). Each table is printed twice: measured live on
// this machine with goroutine pools standing in for OpenMP threads, and as
// the calibrated Mira/Lonestar model values next to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"channeldns/internal/banded"
	"channeldns/internal/fft"
	"channeldns/internal/machine"
	"channeldns/internal/par"
	"channeldns/internal/pencil"
	"channeldns/internal/perf"
	"channeldns/internal/telemetry"
)

func main() {
	table := flag.Int("table", 0, "table to print (2, 3 or 4; 0 = all)")
	jsonPath := flag.String("json", "", "write a telemetry report of the measured speedups to this file (implies all tables)")
	flag.Parse()
	metrics := map[string]float64{}
	if *table == 0 || *table == 2 || *jsonPath != "" {
		table2(metrics)
	}
	if *table == 0 || *table == 3 || *jsonPath != "" {
		table3(metrics)
	}
	if *table == 0 || *table == 4 || *jsonPath != "" {
		table4(metrics)
	}
	if *jsonPath != "" {
		// Single-node kernels are timed whole (no phase spans), so the
		// report carries the measured speedups and rates as metrics.
		rep := telemetry.NewReport("table2_3_4", telemetry.NewRegistry(), map[string]string{
			"ns_kernel": "nw=1024 ny=256 h=7", "fft_kernel": "512 lines of n=1024",
			"reorder": "64x96x64 x8 reps",
		})
		rep.Metrics = metrics
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// nsKernel runs the time-advance linear algebra for nw wavenumbers over a
// pool and returns elapsed time plus counted flops.
func nsKernel(pool *par.Pool, nw, ny, h int) (time.Duration, int64) {
	mats := make([]*banded.Compact, nw)
	rhs := make([][]complex128, nw)
	for w := range mats {
		m := banded.NewCompact(ny, h)
		for i := 0; i < ny; i++ {
			for j := max(0, i-h); j <= min(ny-1, i+h); j++ {
				v := 0.1
				if i == j {
					v = float64(4*h + 8)
				}
				m.Set(i, j, v)
			}
		}
		mats[w] = m
		rhs[w] = make([]complex128, ny)
		for i := range rhs[w] {
			rhs[w][i] = complex(float64(i), 1)
		}
	}
	t0 := time.Now()
	pool.For(nw, func(w int) {
		if err := mats[w].Factor(); err != nil {
			panic(err)
		}
		mats[w].SolveComplex(rhs[w])
	})
	elapsed := time.Since(t0)
	// Flop count: LU ~ ny*(2h+1)*h mults+adds; solve ~ 2 passes x (2h+1)
	// x ny x 2 (real x complex).
	flops := int64(nw) * int64(ny) * int64((2*h+1)*h*2+2*(2*h+1)*4)
	return elapsed, flops
}

func fftKernel(pool *par.Pool, lines, n int) time.Duration {
	plan := fft.NewPlan(n)
	data := make([]complex128, lines*n)
	for i := range data {
		data[i] = complex(float64(i%13), float64(i%7))
	}
	t0 := time.Now()
	pool.For(lines, func(l int) {
		plan.Forward(data[l*n:(l+1)*n], data[l*n:(l+1)*n])
	})
	return time.Since(t0)
}

func table2(metrics map[string]float64) {
	fmt.Println("Table 2: single-core N-S time advance characterization")
	fmt.Println("\n-- measured on this machine (software counters) --")
	pool := par.NewPool(1)
	el, flops := nsKernel(pool, 2048, 256, 7)
	var c perf.Counters
	c.AddFlops(flops)
	fmt.Printf("GFlops: %.2f   elapsed: %v\n", c.GFlops(el), el)
	metrics["ns_gflops_1core"] = c.GFlops(el)

	fmt.Println("\n-- Mira model vs paper --")
	tbl := perf.Table{Headers: []string{"", "GFlops", "frac peak", "DDR B/cycle", "elapsed ratio"}}
	rows := machine.Table2(machine.Mira)
	var base float64
	for _, r := range rows {
		if !r.SIMD {
			base = r.Elapsed
		}
	}
	for _, r := range rows {
		name := "No SIMD"
		if r.SIMD {
			name = "SIMD"
		}
		tbl.AddRowf(name, r.GFlops, r.FracPeak, r.DDRBytesCycle, r.Elapsed/base)
	}
	tbl.AddRow("paper SIMD", "4.96", "0.388", "14.2", "1.19")
	tbl.AddRow("paper NoSIMD", "1.16", "0.0905", "16.8", "1.00")
	tbl.Write(os.Stdout)
	fmt.Println()
}

func table3(metrics map[string]float64) {
	fmt.Println("Table 3: single-node threading speedup (FFT / N-S advance)")
	fmt.Println("\n-- measured on this machine --")
	tbl := perf.Table{Headers: []string{"workers", "FFT speedup", "N-S speedup"}}
	baseF := fftKernel(par.NewPool(1), 512, 1024)
	baseN, _ := nsKernel(par.NewPool(1), 1024, 256, 7)
	for _, w := range []int{2, 4, 8} {
		f := fftKernel(par.NewPool(w), 512, 1024)
		n, _ := nsKernel(par.NewPool(w), 1024, 256, 7)
		tbl.AddRowf(w, baseF.Seconds()/f.Seconds(), baseN.Seconds()/n.Seconds())
		metrics[fmt.Sprintf("fft_speedup_%dworkers", w)] = baseF.Seconds() / f.Seconds()
		metrics[fmt.Sprintf("ns_speedup_%dworkers", w)] = baseN.Seconds() / n.Seconds()
	}
	tbl.Write(os.Stdout)

	fmt.Println("\n-- Mira model vs paper (speedup) --")
	mt := perf.Table{Headers: []string{"threads", "model", "paper FFT", "paper N-S"}}
	paper := map[int][2]float64{2: {1.99, 2.00}, 4: {3.96, 4.00}, 8: {7.88, 7.97},
		16: {15.4, 15.9}, 32: {27.6, 29.9}, 64: {32.6, 34.5}}
	for _, th := range []int{2, 4, 8, 16, 32, 64} {
		p := paper[th]
		mt.AddRowf(th, machine.Table3Speedup(machine.Mira, th), p[0], p[1])
	}
	mt.Write(os.Stdout)
	fmt.Println()
}

func table4(metrics map[string]float64) {
	fmt.Println("Table 4: on-node data reordering")
	fmt.Println("\n-- measured on this machine --")
	ni, nj, nk := 64, 96, 64
	src := make([]complex128, ni*nj*nk)
	dst := make([]complex128, ni*nj*nk)
	for i := range src {
		src[i] = complex(float64(i), 0)
	}
	run := func(w int) time.Duration {
		pool := par.NewPool(w)
		t0 := time.Now()
		for r := 0; r < 8; r++ {
			pencil.Reorder(dst, src, ni, nj, nk, pool)
		}
		return time.Since(t0)
	}
	base := run(1)
	tbl := perf.Table{Headers: []string{"workers", "speedup"}}
	for _, w := range []int{2, 4, 8} {
		s := base.Seconds() / run(w).Seconds()
		tbl.AddRowf(w, s)
		metrics[fmt.Sprintf("reorder_speedup_%dworkers", w)] = s
	}
	tbl.Write(os.Stdout)

	fmt.Println("\n-- Mira model vs paper --")
	mt := perf.Table{Headers: []string{"threads", "model speedup", "model B/cycle", "paper speedup", "paper B/cycle"}}
	paper := map[int][2]float64{2: {1.98, 3.8}, 4: {3.90, 7.6}, 8: {5.54, 13.6},
		16: {6.24, 16.1}, 32: {5.99, 15.8}, 64: {5.56, 13.6}}
	for _, th := range []int{2, 4, 8, 16, 32, 64} {
		p := paper[th]
		mt.AddRowf(th, machine.Table4Speedup(machine.Mira, th),
			machine.Table4Traffic(machine.Mira, th), p[0], p[1])
	}
	mt.Write(os.Stdout)
	fmt.Println()
}
