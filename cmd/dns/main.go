// Command dns runs a direct numerical simulation from the command line:
// pick a registered workload (turbulent channel flow by default, isotropic
// turbulence, passive scalar), configure the grid, Reynolds number and
// process layout, run time steps, and emit statistics profiles (the
// Figure 5/6 pipeline, channel-based workloads only).
//
// Examples:
//
//	dns -nx 32 -ny 49 -nz 32 -retau 180 -dt 2e-3 -steps 200 -stats-every 20
//	dns -workload isotropic -nx 32 -ny 32 -nz 32 -retau 100 -steps 50
//	dns -workload scalar -prandtl 0.7 -nx 32 -ny 49 -nz 32 -steps 200
//
// By default all ranks run as goroutines in this process (-transport=chan).
// With -transport=tcp the process is a single rank of a distributed world
// and needs -rank/-world/-coord; cmd/dnsrun spawns and wires such worlds:
//
//	dnsrun -n 4 -- -nx 32 -ny 49 -nz 32 -pa 2 -pb 2 -steps 200
//
// For a long-running service that queues many runs, checkpoints them
// durably, streams live telemetry, and survives crashes, see cmd/dnsserve.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync/atomic"

	"channeldns/internal/ckpt"
	"channeldns/internal/core"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/stats"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

func main() {
	var (
		nx      = flag.Int("nx", 32, "Fourier modes in x (even)")
		ny      = flag.Int("ny", 65, "B-spline basis size in y")
		nz      = flag.Int("nz", 32, "Fourier modes in z (even)")
		retau   = flag.Float64("retau", 180, "friction Reynolds number")
		dt      = flag.Float64("dt", 5e-4, "time step")
		steps   = flag.Int("steps", 100, "number of time steps")
		pa      = flag.Int("pa", 1, "process grid CommA size")
		pb      = flag.Int("pb", 1, "process grid CommB size")
		threads = flag.Int("threads", 1, "worker threads per rank")
		amp     = flag.Float64("perturb", 0.3, "initial perturbation amplitude")
		seed    = flag.Int64("seed", 1, "perturbation seed")
		wlName  = flag.String("workload", core.WorkloadChannel, "workload to run: "+strings.Join(core.WorkloadNames(), " | "))
		lyF     = flag.Float64("ly", 0, "y extent of the isotropic workload's periodic box (0 = 2*pi)")
		prandtl = flag.Float64("prandtl", 0, "Prandtl number of the scalar workload (0 = 1)")
		every   = flag.Int("stats-every", 10, "accumulate statistics every N steps (0 = off)")
		out     = flag.String("out", "", "write final averaged profiles to this file")
		ckptDir = flag.String("ckpt-dir", "", "checkpoint store directory: sharded, atomically published restart snapshots (any rank count)")
		ckptEvr = flag.Int("ckpt-every", 0, "checkpoint into -ckpt-dir every N steps (0 = final checkpoint only)")
		ckptKp  = flag.Int("ckpt-keep", 3, "rolling retention: keep the newest K checkpoints (0 = keep all)")
		resume  = flag.Bool("resume", false, "auto-resume from the newest valid checkpoint in -ckpt-dir, falling back past corrupt ones")
		oldCkpt = flag.String("checkpoint", "", "removed: use -ckpt-dir (checkpoints are sharded directories and resume on any rank count)")
		oldRest = flag.String("restore", "", "removed: use -ckpt-dir with -resume")
		form    = flag.String("form", "divergence", "nonlinear form: divergence | convective | skew")
		budget  = flag.Bool("budget", false, "print the TKE budget at the end")
		spectra = flag.Bool("spectra", false, "print 1-D energy spectra at selected heights")
		listen  = flag.String("listen", "", "serve live telemetry + pprof + expvar on this address (e.g. localhost:6060)")
		hbEvery = flag.Int("heartbeat-every", 0, "gather per-rank telemetry deltas to rank 0 every N steps for the live /metrics + /status world dashboard (0 = off; a collective, so every rank must run the same value)")
		repPath = flag.String("report", "", "write the final telemetry report (BENCH-schema JSON) to this file")
		trcPath = flag.String("trace", "", "record a flight-recorder trace and write it as Chrome trace-event JSON (open in Perfetto) to this file")
		trcCap  = flag.Int("trace-cap", 0, "per-rank trace ring capacity in events (0 = default)")
		overlap = flag.Bool("overlap", false, "pipeline the nonlinear-path transposes with the FFT stages that consume them (bit-identical; wins at 4+ ranks)")
		chunks  = flag.Int("chunks", 0, "pipeline depth of the overlapped exchange (0 = default 4, clamped per direction)")

		transportF = flag.String("transport", "chan", "rank transport: chan (goroutine ranks in this process) | tcp (this process is one rank of a distributed world; see cmd/dnsrun)")
		rankF      = flag.Int("rank", 0, "with -transport=tcp: this process's world rank")
		worldF     = flag.Int("world", 0, "with -transport=tcp: world size (must equal pa*pb)")
		coordF     = flag.String("coord", "", "with -transport=tcp: rank-0 rendezvous address host:port")
		bindF      = flag.String("bind", "", "with -transport=tcp: peer listener bind address (default 127.0.0.1:0; bind a reachable interface for multi-machine runs)")
		advertF    = flag.String("advertise", "", "with -transport=tcp: host other ranks dial for this rank's peer listener (when -bind is a wildcard)")
	)
	flag.Parse()

	// The PR-5 aliases had their one release of support; the flags stay
	// registered only to fail with a pointer at the replacements.
	if *oldCkpt != "" {
		log.Fatal("dns: -checkpoint was removed; use -ckpt-dir (sharded checkpoint directories, any rank count)")
	}
	if *oldRest != "" {
		log.Fatal("dns: -restore was removed; use -ckpt-dir with -resume")
	}

	cfg := core.Config{
		Workload: *wlName,
		Nx:       *nx, Ny: *ny, Nz: *nz,
		ReTau: *retau, Dt: *dt, Forcing: 1,
		Ly: *lyF, Prandtl: *prandtl,
		PA: *pa, PB: *pb, Pool: par.NewPool(*threads),
		Overlap: *overlap, PipelineChunks: *chunks,
	}
	var reg *telemetry.Registry
	if *listen != "" || *repPath != "" || *trcPath != "" || *hbEvery > 0 {
		reg = telemetry.NewRegistry()
		cfg.Telemetry = reg
	}
	var trc *trace.Trace
	if *trcPath != "" || *listen != "" {
		trc = trace.New(*trcCap)
		cfg.Trace = trc
	}
	// wireSum carries the end-of-run wire-counter gather (TCP runs, set on
	// rank 0) into the report; atomic because the live /telemetry handler
	// may encode a report while the run loop stores it.
	var wireSum atomic.Pointer[telemetry.WireSummary]
	buildReport := func() *telemetry.Report {
		config := map[string]string{
			"workload": *wlName,
			"nx":       fmt.Sprint(*nx), "ny": fmt.Sprint(*ny), "nz": fmt.Sprint(*nz),
			"re_tau": fmt.Sprint(*retau), "dt": fmt.Sprint(*dt),
			"steps": fmt.Sprint(*steps), "pa": fmt.Sprint(*pa), "pb": fmt.Sprint(*pb),
			"threads": fmt.Sprint(*threads), "form": *form,
			"overlap": fmt.Sprint(*overlap), "transport": *transportF,
		}
		if *transportF == "tcp" {
			// One process = one rank of a world; stamp which, so a scraped
			// /telemetry payload is identifiable.
			config["rank"] = fmt.Sprint(*rankF)
			config["world"] = fmt.Sprint(*worldF)
		}
		rep := telemetry.NewReport("dns", reg, config)
		if trc != nil {
			rep.Trace = trace.Summarize(trc)
		}
		if *form == "divergence" {
			// The schedule describes the default divergence-form pipeline;
			// the other forms move different forward-path traffic. Every
			// registered workload emits its own block.
			if sched, err := core.WorkloadSchedule(cfg); err == nil {
				rep.Schedule = sched
			}
		}
		rep.Wire = wireSum.Load()
		return rep
	}
	// The world tracker lives on every rank (so /metrics and /status always
	// answer) but only rank 0's heartbeat gather ever feeds it; other
	// ranks' dashboards stay empty and their index page says where to look.
	var tracker *telemetry.WorldTracker
	if *listen != "" {
		tracker = telemetry.NewWorldTracker(*pa * *pb)
		mux := http.NewServeMux()
		mux.Handle("/", telemetry.HandlerWithIdentity(reg, buildReport, telemetry.Identity{
			Rank: *rankF, World: *worldF, Transport: *transportF,
		}))
		mux.Handle("/trace", trace.Handler(trc))
		mux.Handle("/metrics", telemetry.MetricsHandler(tracker))
		mux.Handle("/status", telemetry.StatusHandler(tracker))
		addr, err := telemetry.ServeHandler(*listen, mux)
		if err != nil {
			log.Fatalf("telemetry endpoint: %v", err)
		}
		fmt.Printf("telemetry endpoint: http://%s/telemetry (world dashboard under /metrics + /status, trace under /trace, pprof under /debug/pprof/)\n", addr)
	}
	nlForm, err := core.ParseForm(*form)
	if err != nil {
		log.Fatalf("dns: %v", err)
	}
	cfg.Nonlinear = nlForm

	isTCP := false
	switch *transportF {
	case "chan":
	case "tcp":
		isTCP = true
		if *worldF != *pa**pb {
			log.Fatalf("dns: -transport=tcp world %d does not match process grid %dx%d", *worldF, *pa, *pb)
		}
		if *coordF == "" {
			log.Fatal("dns: -transport=tcp needs -coord (cmd/dnsrun supplies it)")
		}
	default:
		log.Fatalf("dns: unknown -transport %q (chan | tcp)", *transportF)
	}

	var finalErr error
	body := func(c *mpi.Comm) {
		// Align this process's clock against rank 0 before any timed work,
		// so the trace export carries the offset that makes per-rank
		// timelines mergeable (cmd/trace-merge). In-process ranks share one
		// clock and need none of this.
		if isTCP && trc != nil && c.Size() > 1 {
			cs := mpi.SyncClocks(c, 8)
			trc.SetClockSync(cs.OffsetNs, cs.ErrorNs)
		}
		// heartbeat ships every rank's telemetry (and, on the wire, its
		// transport counters) to rank 0's world tracker. A collective:
		// every rank calls it at the same step.
		heartbeat := func() {
			payload := reg.Rank(c.Rank()).Dump()
			if ws, ok := c.WireStats(); ok {
				payload = append(payload, ws.Dump()...)
			}
			world, arrivals := mpi.GatherHeartbeat(c, 0, payload)
			if c.Rank() == 0 && tracker != nil {
				n := len(payload)
				for r := 0; r < c.Size(); r++ {
					if err := tracker.ObserveDump(r, world[r*n:(r+1)*n], arrivals[r]); err != nil {
						fmt.Fprintf(os.Stderr, "heartbeat: %v\n", err)
					}
				}
			}
			// Clocks drift; refresh the trace alignment at heartbeat cadence.
			if isTCP && trc != nil && c.Size() > 1 {
				cs := mpi.SyncClocks(c, 4)
				trc.SetClockSync(cs.OffsetNs, cs.ErrorNs)
			}
		}
		wl, err := core.NewWorkload(c, cfg)
		if err != nil {
			if c.Rank() == 0 {
				finalErr = err
			}
			return
		}
		// Channel-based workloads expose the underlying channel solver; the
		// statistics pipeline (profiles, budget, spectra) runs on it. Other
		// workloads report through their own StatusLine only.
		var s *core.Solver
		if cs, ok := wl.(core.ChannelFlow); ok {
			s = cs.ChannelSolver()
		}
		var store *ckpt.Store
		if *ckptDir != "" {
			store = wl.NewCheckpointStore(*ckptDir, *ckptKp)
		}
		resumed := false
		if store != nil && *resume {
			switch name, err := wl.ResumeLatest(store); {
			case err == nil:
				resumed = true
				if c.Rank() == 0 {
					fmt.Printf("resumed from %s (step %d, t=%.6g, dt=%.6g)\n",
						name, wl.CurrentStep(), wl.CurrentTime(), wl.CurrentDt())
				}
			case errors.Is(err, ckpt.ErrNoCheckpoint):
				if c.Rank() == 0 {
					fmt.Printf("no checkpoint in %s; starting fresh\n", *ckptDir)
				}
			default:
				if c.Rank() == 0 {
					finalErr = fmt.Errorf("resume: %w", err)
				}
				return
			}
		}
		if !resumed {
			wl.InitDefault(*amp, *seed)
		}
		lastCkpt := -1
		writeCkpt := func() bool {
			if wl.CurrentStep() == lastCkpt {
				return true
			}
			name, err := wl.WriteCheckpoint(store)
			if err != nil {
				if c.Rank() == 0 {
					finalErr = fmt.Errorf("checkpoint: %w", err)
				}
				return false
			}
			lastCkpt = wl.CurrentStep()
			if c.Rank() == 0 {
				fmt.Printf("checkpoint %s written (step %d)\n", name, wl.CurrentStep())
			}
			return true
		}

		acc := &stats.Accumulator{}
		report := func() {
			// StatusLine is a collective: every rank must call it.
			line := wl.StatusLine()
			if c.Rank() == 0 {
				fmt.Println(line)
			}
		}
		report()
		for i := 1; i <= *steps; i++ {
			wl.AdvanceAdaptive(1, 0.8, 5)
			if *hbEvery > 0 && i%*hbEvery == 0 {
				heartbeat()
			}
			if store != nil && *ckptEvr > 0 && i%*ckptEvr == 0 && !writeCkpt() {
				return
			}
			if *every > 0 && i%*every == 0 {
				if s != nil {
					acc.Add(stats.Snapshot(s))
				}
				report()
			}
		}
		if store != nil && !writeCkpt() {
			return
		}
		var bud stats.Budget
		var spx, spz stats.Spectra1D
		if s != nil {
			if acc.Count() == 0 {
				acc.Add(stats.Snapshot(s))
			}
			if *budget {
				bud = stats.TKEBudget(s)
			}
			if *spectra {
				stations := []int{*ny / 8, *ny / 4, *ny / 2}
				spx = stats.SpectraX(s, stations)
				spz = stats.SpectraZ(s, stations)
			}
		}
		if s != nil && c.Rank() == 0 {
			p := acc.Mean()
			fmt.Printf("\nAveraged profiles over %d snapshots:\n", acc.Count())
			if err := p.Write(os.Stdout); err != nil {
				finalErr = err
				return
			}
			yp, up, uTau := p.WallUnits(s.Nu())
			fmt.Printf("\nu_tau = %.4f\n", uTau)
			if k, b, ok := stats.LogLawFit(yp, up, 30, 0.3**retau); ok {
				fmt.Printf("log-law fit over 30 < y+ < %.0f: kappa = %.3f, B = %.2f\n", 0.3**retau, k, b)
			}
			if *budget {
				fmt.Println("\nTKE budget (spectrally exact terms):")
				if err := bud.Write(os.Stdout); err != nil {
					finalErr = err
					return
				}
			}
			if *spectra {
				fmt.Println("\nstreamwise spectra E_uu(kx) at y stations:")
				for si, yi := range spx.YIndex {
					fmt.Printf("y=%.3f:", s.CollocationPoints()[yi])
					for b := range spx.Euu[si] {
						fmt.Printf(" %.3e", spx.Euu[si][b])
					}
					fmt.Println()
				}
				fmt.Println("spanwise spectra E_uu(kz) at y stations:")
				for si, yi := range spz.YIndex {
					fmt.Printf("y=%.3f:", s.CollocationPoints()[yi])
					for b := range spz.Euu[si] {
						fmt.Printf(" %.3e", spz.Euu[si][b])
					}
					fmt.Println()
				}
			}
			if *out != "" {
				f, err := os.Create(*out)
				if err != nil {
					finalErr = err
					return
				}
				defer f.Close()
				if err := p.Write(f); err != nil {
					finalErr = err
				}
			}
		}
		// On the wire transport each process holds only its own rank's
		// telemetry; fold the remote collectors into rank 0's registry
		// so the report aggregates the whole world, exactly as an
		// in-process run's would.
		if reg != nil && isTCP && c.Size() > 1 {
			dumps := mpi.Gather(c, 0, reg.Rank(c.Rank()).Dump())
			if c.Rank() == 0 {
				n := telemetry.DumpLen()
				for r := 1; r < c.Size(); r++ {
					if err := reg.RestoreRank(r, dumps[r*n:(r+1)*n]); err != nil {
						finalErr = err
					}
				}
			}
		}
		// Likewise the wire counters: gather every rank's transport dump so
		// the report's wire block covers the world.
		if ws, ok := c.WireStats(); ok && reg != nil {
			dumps := mpi.Gather(c, 0, ws.Dump())
			if c.Rank() == 0 {
				sum, err := telemetry.WireSummaryFromDumps(c.TransportName(), c.Size(), dumps)
				if err != nil {
					finalErr = err
				} else {
					wireSum.Store(sum)
				}
			}
		}
	}
	if isTCP {
		if trc != nil {
			trc.SetIdentity(*rankF, *worldF)
		}
		c, err := mpi.ConnectTCP(mpi.TCPConfig{
			Rank: *rankF, World: *worldF, Coord: *coordF,
			Bind: *bindF, Advertise: *advertF,
		})
		if err != nil {
			log.Fatal(err)
		}
		body(c)
		c.Close()
	} else {
		mpi.Run(*pa**pb, body)
	}
	if finalErr != nil {
		log.Fatal(finalErr)
	}
	if *trcPath != "" {
		// Distributed runs record one flight recorder per process; every
		// rank writes its own timeline next to rank 0's.
		path := *trcPath
		if isTCP && *rankF != 0 {
			path += fmt.Sprintf(".rank%d", *rankF)
		}
		if err := trc.WriteChromeFile(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (open in ui.perfetto.dev or chrome://tracing)\n", path)
		if !isTCP || *rankF == 0 {
			fmt.Println("\nper-step critical path:")
			trace.WriteStragglerTable(os.Stdout, trace.Analyze(trc.Events()))
		}
	}
	if *repPath != "" && (!isTCP || *rankF == 0) {
		if err := buildReport().WriteFile(*repPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *repPath)
	}
}
