// Command dnsserve runs the DNS-as-a-service job server: a long-running
// process that accepts simulation jobs as JSON over HTTP, queues and runs
// them through the workload registry, checkpoints them into a durable
// per-run store, and streams live status, telemetry deltas and field-plane
// frames to any number of watchers. If the server dies — SIGKILL included
// — the next start rediscovers interrupted runs from their on-disk
// manifests and resumes them from their latest checkpoint.
//
// Start it, submit a job, watch it:
//
//	dnsserve -listen localhost:8080 -data ./runs
//	curl -d '{"nx":16,"ny":24,"nz":16,"steps":100}' localhost:8080/v1/jobs
//	curl -N localhost:8080/v1/jobs/job-000000/stream
//
// See the README's "DNS as a service" section for the full API.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"
)

import "channeldns/internal/server"

func main() {
	var (
		listen   = flag.String("listen", "localhost:8080", "HTTP listen address (port 0 picks a free port)")
		data     = flag.String("data", "runs", "run store root: one directory per job (specs, checkpoints, reports, traces)")
		parallel = flag.Int("parallel", 1, "jobs running concurrently")
		queue    = flag.Int("queue", 16, "submit queue capacity")
		keep     = flag.Int("keep", 0, "retention: prune the oldest finished runs beyond K (0 = keep all)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		grace    = flag.Duration("grace", 30*time.Second, "shutdown grace period: running jobs checkpoint, then HTTP drains")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "dnsserve: ", log.LstdFlags)

	srv, err := server.New(*data, server.Options{
		Parallel: *parallel,
		Queue:    *queue,
		Keep:     *keep,
		Logf:     logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		logger.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(addr+"\n"), 0o644); err != nil {
			logger.Fatal(err)
		}
	}
	logger.Printf("listening on http://%s (run store %s)", addr, *data)

	// SIGTERM/SIGINT start the graceful drain: running jobs checkpoint and
	// park as "interrupted"; the next start auto-resumes them.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigc
		logger.Printf("%v: draining (checkpointing running jobs)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			logger.Printf("drain: %v", err)
			os.Exit(1)
		}
	}()
	if err := srv.Serve(); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("drained cleanly")
}
