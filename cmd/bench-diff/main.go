// Command bench-diff compares two BENCH_*.json artifacts metric-by-metric
// and emits a pass/warn/fail verdict — the repo's perf-regression gate.
//
//	bench-diff [-warn-ratio 1.25] [-fail-ratio 1.5] [-warn-only] baseline.json candidate.json
//	bench-diff -model [-machine Mira] [-model-tol 3] report.json
//
// Structural mismatches (schema, table, missing phases/comm channels/
// metrics) always fail. Numeric comparisons (per-step timings, sustained
// GFLOP/s, allocations) fail at -fail-ratio and warn at -warn-ratio; with
// -warn-only they are capped at warn, which is how `make ci` compares a
// fresh bench-smoke run against the committed baseline from another
// machine. When the two reports' config fingerprints differ, numeric
// comparisons are informational only. Exit status: 0 pass/warn, 1 fail,
// 2 usage or unreadable/invalid artifact.
//
// -model takes ONE report and compares its measured per-phase seconds
// against the machine model's prediction for the report's schedule block,
// normalized by the overall measured/modeled ratio (the model is calibrated
// to the paper's platforms, not this machine, so only the shape of the
// breakdown is judged). Drifting phases are reported as warnings; the mode
// never fails the gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"channeldns/internal/machine"
	"channeldns/internal/telemetry"
)

func main() {
	var (
		warnRatio   = flag.Float64("warn-ratio", 0, "candidate/baseline ratio that warns (0 = default 1.25)")
		failRatio   = flag.Float64("fail-ratio", 0, "candidate/baseline ratio that fails (0 = default 1.5)")
		minSecs     = flag.Float64("min-seconds", 0, "noise floor: per-step timings below this on both sides pass (0 = default 100us)")
		warnOnly    = flag.Bool("warn-only", false, "cap numeric regressions at warn (structural mismatches still fail)")
		quiet       = flag.Bool("q", false, "print only the verdict line")
		model       = flag.Bool("model", false, "compare ONE report's measured phases against the machine model of its schedule block")
		machineName = flag.String("machine", "Mira", "platform for -model (Mira, Lonestar, Stampede, BlueWaters)")
		modelTol    = flag.Float64("model-tol", 3, "-model: flag phases whose normalized measured/modeled ratio drifts beyond this factor")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: bench-diff [flags] baseline.json candidate.json\n       bench-diff -model [-machine M] report.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *model {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(modelMode(flag.Arg(0), *machineName, *modelTol))
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: candidate: %v\n", err)
		os.Exit(2)
	}
	res := telemetry.Diff(base, cand, telemetry.DiffOptions{
		WarnRatio:  *warnRatio,
		FailRatio:  *failRatio,
		MinSeconds: *minSecs,
		WarnOnly:   *warnOnly,
	})
	if *quiet {
		fmt.Printf("verdict: %s\n", res.Verdict)
	} else {
		res.Write(os.Stdout)
	}
	if res.Verdict == telemetry.Fail {
		os.Exit(1)
	}
}

// modelMode runs the -model comparison and returns the process exit code:
// 0 (drift is advisory — warnings, never gate failures) or 2 for an
// unusable report (unreadable, invalid, or no schedule block).
func modelMode(path, machineName string, tol float64) int {
	rep, err := load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: %v\n", err)
		return 2
	}
	m, ok := machine.ByName(machineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench-diff: unknown machine %q\n", machineName)
		return 2
	}
	execs := rep.Steps
	if execs == 0 {
		// Cycle reports (table5/table6) record no steps; the iteration count
		// rides in the config fingerprint.
		if n, err := strconv.ParseInt(rep.Config["iters"], 10, 64); err == nil {
			execs = n
		}
	}
	rows, err := machine.ModelDiff(m, rep, execs, tol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: %v\n", err)
		return 2
	}
	flagged := machine.WriteModelDiff(os.Stdout, m, rows, max(1, execs))
	if flagged > 0 {
		fmt.Printf("verdict: warn (%d phase(s) drift beyond %.1fx of the overall ratio)\n", flagged, tol)
	} else {
		fmt.Println("verdict: pass")
	}
	return 0
}

func load(path string) (*telemetry.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return telemetry.ValidateJSON(raw)
}
