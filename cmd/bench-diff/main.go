// Command bench-diff compares two BENCH_*.json artifacts metric-by-metric
// and emits a pass/warn/fail verdict — the repo's perf-regression gate.
//
//	bench-diff [-warn-ratio 1.25] [-fail-ratio 1.5] [-warn-only] baseline.json candidate.json
//
// Structural mismatches (schema, table, missing phases/comm channels/
// metrics) always fail. Numeric comparisons (per-step timings, sustained
// GFLOP/s, allocations) fail at -fail-ratio and warn at -warn-ratio; with
// -warn-only they are capped at warn, which is how `make ci` compares a
// fresh bench-smoke run against the committed baseline from another
// machine. When the two reports' config fingerprints differ, numeric
// comparisons are informational only. Exit status: 0 pass/warn, 1 fail,
// 2 usage or unreadable/invalid artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"channeldns/internal/telemetry"
)

func main() {
	var (
		warnRatio = flag.Float64("warn-ratio", 0, "candidate/baseline ratio that warns (0 = default 1.25)")
		failRatio = flag.Float64("fail-ratio", 0, "candidate/baseline ratio that fails (0 = default 1.5)")
		minSecs   = flag.Float64("min-seconds", 0, "noise floor: per-step timings below this on both sides pass (0 = default 100us)")
		warnOnly  = flag.Bool("warn-only", false, "cap numeric regressions at warn (structural mismatches still fail)")
		quiet     = flag.Bool("q", false, "print only the verdict line")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bench-diff [flags] baseline.json candidate.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: candidate: %v\n", err)
		os.Exit(2)
	}
	res := telemetry.Diff(base, cand, telemetry.DiffOptions{
		WarnRatio:  *warnRatio,
		FailRatio:  *failRatio,
		MinSeconds: *minSecs,
		WarnOnly:   *warnOnly,
	})
	if *quiet {
		fmt.Printf("verdict: %s\n", res.Verdict)
	} else {
		res.Write(os.Stdout)
	}
	if res.Verdict == telemetry.Fail {
		os.Exit(1)
	}
}

func load(path string) (*telemetry.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return telemetry.ValidateJSON(raw)
}
