// Command bench-timestep regenerates the timestep scaling studies of the
// paper: Table 7/8 (problem configurations), Table 9 (strong scaling),
// Table 10 (weak scaling) and Table 11 (MPI vs hybrid on Mira), using the
// calibrated machine model, with paper values side by side and efficiency
// columns computed exactly as the paper computes them. -live runs real
// in-process timesteps of the full DNS at laptop scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"channeldns/internal/core"
	"channeldns/internal/machine"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/perf"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

func main() {
	strong := flag.Bool("strong", false, "print Table 9 (strong scaling)")
	weak := flag.Bool("weak", false, "print Table 10 (weak scaling)")
	hybrid := flag.Bool("hybrid", false, "print Table 11 (MPI vs hybrid)")
	configs := flag.Bool("configs", false, "print Tables 7/8 (benchmark grids)")
	live := flag.Bool("live", false, "run live in-process timesteps")
	showSched := flag.Bool("schedule", false, "print the declarative op schedule of one RK3 timestep on the -nx/-ny/-nz grid")
	jsonPath := flag.String("json", "", "run serial instrumented RK3 steps and write the telemetry report here")
	tracePath := flag.String("trace", "", "also record the -json run's flight recorder and write Chrome trace-event JSON here")
	nx := flag.Int("nx", 32, "grid Nx for the -json run")
	ny := flag.Int("ny", 33, "grid Ny for the -json run")
	nz := flag.Int("nz", 32, "grid Nz for the -json run")
	steps := flag.Int("steps", 3, "timed steps for the -json run")
	overlap := flag.Bool("overlap", false, "run the -json/-schedule steps with the pipelined transpose/FFT overlap (bit-identical; at 1 rank only the schedule and pricing change)")
	workload := flag.String("workload", core.WorkloadChannel, "workload for the -json/-schedule runs: "+strings.Join(core.WorkloadNames(), " | "))
	flag.Parse()
	all := !*strong && !*weak && !*hybrid && !*configs && !*live && !*showSched && *jsonPath == ""

	if *showSched {
		cfg := core.Config{Workload: *workload, Nx: *nx, Ny: *ny, Nz: *nz, ReTau: 180, Dt: 1e-3, Overlap: *overlap}
		sched, err := core.WorkloadSchedule(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sched.Write(os.Stdout)
	}

	if *configs || all {
		printConfigs()
	}
	if *strong || all {
		printTimestep("Table 9: strong scaling of a timestep", machine.Table9(), false)
	}
	if *weak || all {
		printTimestep("Table 10: weak scaling of a timestep", machine.Table10(), true)
	}
	if *hybrid || all {
		printTable11()
	}
	if *live {
		runLive()
	}
	if *jsonPath != "" {
		if err := runReport(*jsonPath, *tracePath, *workload, *nx, *ny, *nz, *steps, *overlap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runReport runs the serial instrumented RK3 benchmark — the live analog of
// the paper's Table 9 single-configuration row — and writes the telemetry
// report. The phase breakdown comes from the leaf regions inside the step,
// so phase_seconds_sum tracks wall_seconds to within the repo's 10%
// acceptance bound; allocs_per_step restates the process-wide steady-state
// allocation count the core alloc budget bounds.
func runReport(path, tracePath, workload string, nx, ny, nz, steps int, overlap bool) error {
	reg := telemetry.NewRegistry()
	cfg := core.Config{Workload: workload, Nx: nx, Ny: ny, Nz: nz, ReTau: 180, Dt: 1e-3, Forcing: 1,
		Telemetry: reg, Overlap: overlap}
	var trc *trace.Trace
	if tracePath != "" {
		trc = trace.New(0)
		cfg.Trace = trc
	}
	sched, err := core.WorkloadSchedule(cfg)
	if err != nil {
		return err
	}
	var allocsPerStep float64
	var runErr error
	mpi.Run(1, func(c *mpi.Comm) {
		wl, err := core.NewWorkload(c, cfg)
		if err != nil {
			runErr = err
			return
		}
		wl.InitDefault(0.3, 1)
		wl.Advance(2) // warm the operator cache and workspace arena
		reg.Reset()   // drop warmup samples
		before := perf.ReadAllocs()
		wl.Advance(steps)
		allocsPerStep = float64(perf.ReadAllocs().Sub(before).Mallocs) / float64(steps)
	})
	if runErr != nil {
		return runErr
	}
	rep := telemetry.NewReport("table9", reg, map[string]string{
		"workload": workload,
		"nx":       fmt.Sprint(nx), "ny": fmt.Sprint(ny), "nz": fmt.Sprint(nz),
		"re_tau": "180", "dt": "1e-3", "steps": fmt.Sprint(steps),
		"pa": "1", "pb": "1", "threads": "1", "form": "divergence",
		"overlap": fmt.Sprint(overlap),
	})
	rep.AllocsPerStep = allocsPerStep
	rep.Schedule = sched
	if trc != nil {
		rep.Trace = trace.Summarize(trc)
	}
	if err := rep.WriteFile(path); err != nil {
		return err
	}
	if trc != nil {
		if err := trc.WriteChromeFile(tracePath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", tracePath)
	}
	fmt.Printf("wrote %s (%d steps, %.4fs/step, phase sum %.4fs)\n",
		path, steps, rep.WallSeconds/float64(steps), rep.PhaseSecondsSum/float64(steps))
	return nil
}

func printConfigs() {
	t7 := perf.Table{Title: "Table 7: strong scaling grids", Headers: []string{"system", "Nx", "Ny", "Nz", "DOF"}}
	for _, sys := range []string{"Mira", "Lonestar", "Stampede", "BlueWaters"} {
		nx, ny, nz := machine.Table7Grid(sys)
		t7.AddRowf(sys, nx, ny, nz, float64(nx)*float64(ny)*float64(nz)*3)
	}
	t7.Write(os.Stdout)
	fmt.Println()
	t8 := perf.Table{Title: "Table 8: weak scaling grids (Nx varies with cores)", Headers: []string{"system", "Ny", "Nz"}}
	for _, sys := range []string{"Mira", "Lonestar", "Stampede", "BlueWaters"} {
		ny, nz := machine.Table8Fixed(sys)
		t8.AddRowf(sys, ny, nz)
	}
	t8.Write(os.Stdout)
	fmt.Println()
}

func printTimestep(title string, rows []machine.TimestepRow, weak bool) {
	tbl := perf.Table{
		Title: title + "  (model seconds / efficiency, paper seconds / efficiency)",
		Headers: []string{"system", "mode", "cores", "T model", "F model", "N model", "tot model", "eff%",
			"tot paper", "paper eff%"},
	}
	// Efficiency normalized by the first (smallest-core) row per
	// system+mode group, time*cores for strong, time for weak.
	type key struct {
		sys  string
		mode machine.Mode
	}
	baseM := map[key]float64{}
	baseP := map[key]float64{}
	baseC := map[key]int{}
	for _, r := range rows {
		k := key{r.System, r.Mode}
		if _, ok := baseM[k]; !ok {
			baseM[k] = r.Model.Total()
			baseP[k] = r.Paper.Total()
			baseC[k] = r.Cores
		}
		effM := baseM[k] / r.Model.Total()
		effP := baseP[k] / r.Paper.Total()
		if !weak {
			// Strong scaling: efficiency = (T0*C0)/(T*C).
			effM *= float64(baseC[k]) / float64(r.Cores)
			effP *= float64(baseC[k]) / float64(r.Cores)
		}
		tbl.AddRowf(r.System, r.Mode.String(), r.Cores,
			r.Model.Transpose, r.Model.FFT, r.Model.Advance, r.Model.Total(), 100*effM,
			r.Paper.Total(), 100*effP)
	}
	tbl.Write(os.Stdout)
	fmt.Println()
}

func printTable11() {
	tbl := perf.Table{
		Title:   "Table 11: MPI vs Hybrid on Mira (total step seconds)",
		Headers: []string{"scaling", "cores", "MPI model", "Hybrid model", "ratio", "MPI paper", "Hybrid paper", "paper ratio"},
	}
	for _, r := range machine.Table11() {
		kind := "strong"
		if r.Weak {
			kind = "weak"
		}
		if r.ModelRatio == 0 {
			continue
		}
		tbl.AddRowf(kind, r.Cores, r.ModelMPI, r.ModelHybrid, r.ModelRatio,
			r.PaperMPI, r.PaperHybrid, r.PaperRatio)
	}
	tbl.Write(os.Stdout)
	fmt.Println()
}

func runLive() {
	fmt.Println("Live in-process full RK3 timesteps (32x33x32, ReTau=180):")
	tbl := perf.Table{Headers: []string{"ranks", "grid", "threads", "sec/step"}}
	for _, c := range []struct{ pa, pb, th int }{{1, 1, 1}, {2, 2, 1}, {2, 2, 2}} {
		d := liveStep(c.pa, c.pb, c.th)
		tbl.AddRowf(c.pa*c.pb, fmt.Sprintf("%dx%d", c.pa, c.pb), c.th, d.Seconds())
	}
	tbl.Write(os.Stdout)
}

func liveStep(pa, pb, threads int) time.Duration {
	var per time.Duration
	cfg := core.Config{Nx: 32, Ny: 33, Nz: 32, ReTau: 180, Dt: 1e-3, Forcing: 1,
		PA: pa, PB: pb, Pool: par.NewPool(threads)}
	mpi.Run(pa*pb, func(c *mpi.Comm) {
		s, err := core.New(c, cfg)
		if err != nil {
			panic(err)
		}
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 1)
		s.StepOnce() // warm the operator cache
		c.Barrier()
		t0 := time.Now()
		const n = 3
		s.Advance(n)
		c.Barrier()
		if c.Rank() == 0 {
			per = time.Since(t0) / n
		}
	})
	return per
}
