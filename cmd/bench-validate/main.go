// Command bench-validate checks BENCH_*.json telemetry reports against the
// channeldns/bench/v1 schema: strict field parsing, phase-name and ordering
// invariants, and sane comm/metric accounting. With -trace it instead
// validates Chrome trace-event files (valid JSON, >0 events, monotone
// timestamps per track). The bench-smoke CI target runs it over every
// artifact the cmd/bench-* tools emit; run it by hand over committed
// BENCH_*.json files after regenerating them.
//
// Exit status is non-zero if any file fails, so it composes with make.
package main

import (
	"flag"
	"fmt"
	"os"

	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

func main() {
	quiet := flag.Bool("q", false, "print only failures")
	traceMode := flag.Bool("trace", false, "validate Chrome trace-event files instead of BENCH reports")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: bench-validate [-q] [-trace] file.json ...")
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		if *traceMode {
			n, err := trace.ValidateChrome(raw)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", path, err)
				failed++
				continue
			}
			if !*quiet {
				fmt.Printf("%s: ok (%d events)\n", path, n)
			}
			continue
		}
		r, err := telemetry.ValidateJSON(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", path, err)
			failed++
			continue
		}
		// Reports carrying a schedule block must agree with their own comm
		// table: 2x bytes_per_rank per transpose call, CommSize-1 messages,
		// and (for timestep runs) schedule-derived flop totals.
		if err := r.CheckScheduleConsistency(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", path, err)
			failed++
			continue
		}
		// Runs that did checkpoint I/O must account for it coherently:
		// phase spans and comm byte records in 1:1 correspondence.
		if err := r.CheckCheckpointIO(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", path, err)
			failed++
			continue
		}
		if !*quiet {
			sched := 0
			if r.Schedule != nil {
				sched = len(r.Schedule.Ops)
			}
			fmt.Printf("%s: ok (table=%s ranks=%d phases=%d comm=%d metrics=%d schedule_ops=%d)\n",
				path, r.Table, r.Ranks, len(r.Phases), len(r.Comm), len(r.Metrics), sched)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d reports invalid\n", failed, flag.NArg())
		os.Exit(1)
	}
}
