// Poiseuille: validation against an exact solution. Starting from rest
// under a unit pressure gradient, the channel must spin up to the laminar
// parabola U(y) = ReTau*(1-y^2)/2, and the analytic startup transient (a
// cosine eigenfunction series) must be tracked along the way.
//
//	go run ./examples/poiseuille
package main

import (
	"fmt"
	"log"
	"math"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
)

// analyticStartup is the exact solution of du/dt = 1 + nu*u” with u(±1)=0,
// u(y,0)=0:
//
//	u(y,t) = (1-y^2)/(2 nu) - sum_k a_k cos(l_k y) exp(-nu l_k^2 t),
//	l_k = (2k+1) pi/2,  a_k = 2 (-1)^k / (nu l_k^3).
func analyticStartup(y, t, nu float64) float64 {
	u := (1 - y*y) / (2 * nu)
	for k := 0; k < 200; k++ {
		lk := (2*float64(k) + 1) * math.Pi / 2
		ak := 2 * math.Pow(-1, float64(k)) / (nu * lk * lk * lk)
		u -= ak * math.Cos(lk*y) * math.Exp(-nu*lk*lk*t)
	}
	return u
}

func main() {
	const reTau = 10.0
	mpi.Run(1, func(comm *mpi.Comm) {
		s, err := core.New(comm, core.Config{
			Nx: 8, Ny: 33, Nz: 8, ReTau: reTau, Dt: 5e-3, Forcing: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		nu := s.Nu()
		fmt.Println("laminar channel startup vs analytic solution:")
		fmt.Printf("%-8s %-12s %-12s %-10s\n", "t", "U(0) dns", "U(0) exact", "max error")
		for block := 0; block < 6; block++ {
			s.Advance(40)
			u := s.MeanProfile()
			maxErr := 0.0
			for i, y := range s.CollocationPoints() {
				exact := analyticStartup(y, s.Time, nu)
				if e := math.Abs(u[i] - exact); e > maxErr {
					maxErr = e
				}
			}
			mid := len(u) / 2
			fmt.Printf("%-8.3f %-12.6f %-12.6f %-10.2e\n",
				s.Time, u[mid], analyticStartup(s.CollocationPoints()[mid], s.Time, nu), maxErr)
		}
		// Long-time limit: the exact parabola. The slowest transient mode
		// decays like exp(-nu*(pi/2)^2 t), so run to t ~ 90; accuracy no
		// longer matters here, so take much larger (still stable, viscous-
		// implicit) steps.
		s.Cfg.Dt = 0.05
		s.Advance(1700)
		u := s.MeanProfile()
		maxErr := 0.0
		for i, y := range s.CollocationPoints() {
			if e := math.Abs(u[i] - reTau*(1-y*y)/2); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("\nsteady state at t=%.2f: max |U - parabola| = %.2e\n", s.Time, maxErr)
	})
}
