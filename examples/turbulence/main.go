// Turbulence: a miniature version of the paper's science run (Figures 5
// and 6). A perturbed laminar channel at ReTau = 180 transitions toward
// turbulence while statistics accumulate; the averaged mean profile is
// printed in wall units against the Reichardt law-of-the-wall, and the
// Reynolds stresses against their exact constraints.
//
// At publication scale the paper integrates 650,000 steps on 524,288 cores;
// here the same code path runs a short transient at toy resolution, so the
// statistics are indicative, not converged.
//
//	go run ./examples/turbulence [-steps 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/stats"
)

func main() {
	steps := flag.Int("steps", 400, "time steps to run")
	flag.Parse()

	// Four ranks in a 2x2 pencil grid — the full distributed pipeline.
	mpi.Run(4, func(comm *mpi.Comm) {
		// Wall-normal resolution matters: the pointwise products of the
		// collocation method alias in y when Ny is too small for the
		// transition transient, so use a generous basis.
		wl, err := core.NewWorkload(comm, core.Config{
			Nx: 32, Ny: 65, Nz: 32, // empty Workload selects "channel"
			ReTau: 180, Dt: 5e-4, Forcing: 1,
			PA: 2, PB: 2, Pool: par.NewPool(2),
		})
		if err != nil {
			log.Fatal(err)
		}
		s := wl.(core.ChannelFlow).ChannelSolver()
		s.SetLaminar()
		s.Perturb(0.3, 3, 3, 2024)

		acc := &stats.Accumulator{}
		for i := 1; i <= *steps; i++ {
			// Adaptive stepping keeps the convective CFL bound near 0.9
			// through the violent transient-growth phase of transition.
			s.AdvanceAdaptive(1, 0.9, 5)
			if i%20 == 0 {
				acc.Add(stats.Snapshot(s))
				if i%100 == 0 {
					// Collectives run on every rank; only rank 0 prints.
					e := s.TotalEnergy()
					ut := s.FrictionVelocity()
					cfl := s.CFLEstimate()
					if comm.Rank() == 0 {
						fmt.Printf("step %4d  t=%6.3f  dt=%7.1e  E=%9.4f  u_tau=%6.4f  CFL<=%5.2f\n", i, s.Time, s.Cfg.Dt, e, ut, cfl)
					}
				}
			}
		}
		if comm.Rank() != 0 {
			return
		}
		p := acc.Mean()
		yp, up, uTau := p.WallUnits(s.Nu())
		fmt.Printf("\nFigure 5 data: mean velocity in wall units (u_tau = %.4f)\n", uTau)
		fmt.Printf("%-10s %-10s %-12s\n", "y+", "U+", "Reichardt")
		for i := 0; i < len(yp); i += 2 {
			fmt.Printf("%-10.3f %-10.4f %-12.4f\n", yp[i], up[i], stats.ReichardtProfile(yp[i]))
		}
		if k, b, ok := stats.LogLawFit(yp, up, 30, 120); ok {
			fmt.Printf("log-law fit: kappa = %.3f, B = %.2f (classical ~0.40, ~5.0)\n", k, b)
		}
		fmt.Println("\nFigure 6 data: Reynolds stresses")
		if err := p.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
	})
}
