// Scaling: drive the machine performance model from the public API to plan
// a (hypothetical) production campaign: pick a platform and grid, sweep the
// core count, and inspect where the transpose, FFT and time-advance budgets
// go — the analysis behind the paper's Tables 9-11.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"os"

	"channeldns/internal/machine"
	"channeldns/internal/perf"
	"channeldns/internal/schedule"
)

func main() {
	// The paper's production configuration: the ReTau = 5200 run uses
	// 10240 x 1536 x 7680 modes on 32 racks of Mira.
	nx, ny, nz := 10240, 1536, 7680
	m := machine.Mira

	fmt.Printf("Planning the ReTau=5200 production run (%d x %d x %d, %.0fG DOF) on %s\n\n",
		nx, ny, nz, 3*float64(nx)*float64(ny)*float64(nz)/1e9, m.Name)

	tbl := perf.Table{
		Title:   "Projected cost per RK3 step (hybrid mode)",
		Headers: []string{"cores", schedule.PhaseTransposeAB.String(), "FFT", "N-S advance", "total", "core-hours/step"},
	}
	for _, cores := range []int{131072, 262144, 524288, 786432} {
		b := machine.TimestepTime(m, machine.ModeHybrid, nx, ny, nz, cores)
		tbl.AddRowf(cores, b.Transpose, b.FFT, b.Advance, b.Total(),
			b.Total()*float64(cores)/3600)
	}
	if err := tbl.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The paper's run: 650,000 steps at 524,288 cores.
	b := machine.TimestepTime(m, machine.ModeHybrid, nx, ny, nz, 524288)
	total := b.Total() * 650000 * 524288 / 3600
	fmt.Printf("\nfull campaign at 524288 cores: %.0f million core-hours (paper: ~260M)\n", total/1e6)

	// Mode choice at the production scale.
	mpi := machine.TimestepTime(m, machine.ModeMPI, nx, ny, nz, 524288)
	fmt.Printf("MPI-per-core would cost %.1fs/step vs hybrid %.1fs/step (ratio %.2f)\n",
		mpi.Total(), b.Total(), mpi.Total()/b.Total())

	// The paper's §5.3 flop accounting on the strong-scaling benchmark.
	sx, sy, sz := machine.Table7Grid("Mira")
	rep := machine.AggregateFlops(m, machine.ModeMPI, sx, sy, sz, 786432)
	fmt.Printf("\n48-rack benchmark: sustained %.0f TFlops (%.1f%% of peak; paper 271, 2.7%%),\n"+
		"on-node %.0f TFlops (%.1f%% of peak; paper ~906, 9.0%%)\n",
		rep.Sustained/1e12, 100*rep.SustainedFrac, rep.OnNode/1e12, 100*rep.OnNodeFrac)
}
