// Quickstart: the smallest complete channel DNS — build the channel
// workload through the registry, set an initial condition, advance it, and
// look at the flow. Swap Workload for core.WorkloadIsotropic or
// core.WorkloadScalar to run the other registered scenarios on the same
// substrate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
)

func main() {
	// Every run happens inside the message-passing runtime, even a serial
	// one: mpi.Run starts the ranks and hands each its communicator.
	mpi.Run(1, func(comm *mpi.Comm) {
		wl, err := core.NewWorkload(comm, core.Config{
			Workload: core.WorkloadChannel, // "" also selects the channel
			Nx:       16, Ny: 25, Nz: 16, // Fourier x B-spline x Fourier resolution
			ReTau:   180,  // friction Reynolds number (nu = 1/ReTau)
			Dt:      1e-3, // time step
			Forcing: 1,    // mean pressure gradient, wall units
			Pool:    par.NewPool(2),
		})
		if err != nil {
			log.Fatal(err)
		}

		// Start from the workload's canonical initial condition: for the
		// channel, the laminar parabola plus small wall-compatible
		// disturbances in the lowest Fourier modes.
		wl.InitDefault(0.3, 42)

		// Channel-specific diagnostics (profiles, friction velocity) live on
		// the solver behind the ChannelFlow marker interface.
		solver := wl.(core.ChannelFlow).ChannelSolver()

		fmt.Printf("grid: %d x %d x %d (%.0f DOF for 3 velocity components)\n",
			solver.Cfg.Nx, solver.Cfg.Ny, solver.Cfg.Nz, float64(solver.G.DOF()*3))
		fmt.Printf("t=%5.3f  energy=%8.3f  u_tau=%.3f\n",
			solver.Time, solver.TotalEnergy(), solver.FrictionVelocity())

		// Advance 50 steps (each is three IMEX Runge-Kutta substeps with
		// the full dealiased nonlinear transform pipeline).
		for block := 0; block < 5; block++ {
			wl.Advance(10)
			fmt.Printf("t=%5.3f  energy=%8.3f  u_tau=%.3f\n",
				solver.Time, solver.TotalEnergy(), solver.FrictionVelocity())
		}

		// The mean velocity profile, from the wall to the centerline.
		u := solver.MeanProfile()
		y := solver.CollocationPoints()
		fmt.Println("\nmean velocity profile (lower half):")
		for i := 0; i < len(y); i += 4 {
			if y[i] > 0 {
				break
			}
			fmt.Printf("  y=%7.3f  U=%7.3f\n", y[i], u[i])
		}
	})
}
