// Package channeldns is a from-scratch Go reproduction of "Petascale Direct
// Numerical Simulation of Turbulent Channel Flow on up to 786K Cores"
// (Lee, Malaya & Moser, SC'13): a Fourier/B-spline spectral channel-flow
// DNS with the paper's customized banded linear algebra, pencil-decomposed
// global transposes over CommA/CommB sub-communicators, a customized
// parallel FFT compared against a P3DFFT-style baseline, and calibrated
// machine models that regenerate the paper's scaling tables.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-reproduction results. The benchmark harness
// in bench_test.go has one benchmark per paper table or figure.
package channeldns
